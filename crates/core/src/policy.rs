//! Prefix-selection policy ablation.
//!
//! The paper's pruning rule keeps the candidate with the **largest common
//! sub-combination** (argmax popcount, ties to the larger index). This
//! module makes the policy a parameter so the design choice can be ablated:
//! how much sparsity does the argmax rule actually buy over cheaper
//! alternatives (first match, random-ish smallest match), and how do the
//! Exact-Match and Partial-Match mechanisms contribute individually?

use crate::detect::detect_tile;
use crate::stats::ProStats;
use serde::{Deserialize, Serialize};
use spikemat::{SpikeMatrix, TileShape};

/// Which prefix a row picks among its valid subset candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefixPolicy {
    /// The paper's rule: largest subset, ties toward the larger index.
    LargestSubset,
    /// The *smallest* valid subset — a lower bound on per-row benefit.
    SmallestSubset,
    /// The first valid candidate in index order — what a cheaper,
    /// priority-encoder-only Pruner would produce.
    FirstMatch,
    /// Only Exact Matches are exploited (duplicate-row elimination only).
    ExactOnly,
    /// Only Partial Matches are exploited (no duplicate elimination).
    PartialOnly,
}

impl PrefixPolicy {
    /// All policies, for sweeps.
    pub fn all() -> [PrefixPolicy; 5] {
        [
            PrefixPolicy::LargestSubset,
            PrefixPolicy::SmallestSubset,
            PrefixPolicy::FirstMatch,
            PrefixPolicy::ExactOnly,
            PrefixPolicy::PartialOnly,
        ]
    }
}

/// Analyzes one padded tile under `policy`, counting only `valid_rows`.
pub fn analyze_tile_with_policy(
    tile: &SpikeMatrix,
    valid_rows: usize,
    policy: PrefixPolicy,
) -> ProStats {
    let detected = detect_tile(tile);
    let pc = &detected.popcounts;
    let mut s = ProStats::default();
    for i in 0..valid_rows.min(tile.rows()) {
        s.dense_ops += tile.cols() as u64;
        s.bit_ops += pc[i] as u64;
        s.rows += 1;
        let valid = detected.subset_candidates[i].iter().copied().filter(|&j| {
            let ordered = pc[j] < pc[i] || (pc[j] == pc[i] && j < i);
            let kind_ok = match policy {
                PrefixPolicy::ExactOnly => pc[j] == pc[i],
                PrefixPolicy::PartialOnly => pc[j] < pc[i],
                _ => true,
            };
            ordered && kind_ok
        });
        let chosen = match policy {
            PrefixPolicy::LargestSubset => valid.max_by_key(|&j| (pc[j], j)),
            PrefixPolicy::SmallestSubset => valid.min_by_key(|&j| (pc[j], j)),
            PrefixPolicy::FirstMatch => valid.min(),
            PrefixPolicy::ExactOnly | PrefixPolicy::PartialOnly => {
                valid.max_by_key(|&j| (pc[j], j))
            }
        };
        match chosen {
            Some(p) => {
                let remaining = (pc[i] - pc[p]) as u64;
                s.pro_ops += remaining;
                if pc[p] == pc[i] {
                    s.em_rows += 1;
                } else {
                    s.pm_rows += 1;
                }
            }
            None => {
                s.pro_ops += pc[i] as u64;
                s.root_rows += 1;
            }
        }
    }
    s
}

/// Analyzes a whole matrix under `policy` with the given tile geometry.
pub fn analyze_matrix_with_policy(
    spikes: &SpikeMatrix,
    shape: TileShape,
    policy: PrefixPolicy,
) -> ProStats {
    let mut total = ProStats::default();
    for t in spikes.tiles(shape) {
        let sub = t.data.submatrix(0, 0, t.data.rows(), t.valid_cols.max(1));
        let mut s = analyze_tile_with_policy(&sub, t.valid_rows, policy);
        if t.valid_cols == 0 {
            s.dense_ops = 0;
        }
        total += s;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ProSparsityPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> SpikeMatrix {
        let mut rng = StdRng::seed_from_u64(77);
        SpikeMatrix::random(256, 32, 0.3, &mut rng)
    }

    #[test]
    fn largest_subset_matches_the_default_plan() {
        let m = sample();
        let shape = TileShape::new(128, 16);
        let s = analyze_matrix_with_policy(&m, shape, PrefixPolicy::LargestSubset);
        let plan = ProSparsityPlan::build_tiled(&m, shape);
        assert_eq!(s.pro_ops, plan.stats().pro_ops);
        assert_eq!(s.em_rows, plan.stats().em_rows);
        assert_eq!(s.pm_rows, plan.stats().pm_rows);
    }

    #[test]
    fn largest_subset_is_per_row_optimal() {
        let m = sample();
        let shape = TileShape::new(128, 16);
        let best = analyze_matrix_with_policy(&m, shape, PrefixPolicy::LargestSubset);
        for policy in [
            PrefixPolicy::SmallestSubset,
            PrefixPolicy::FirstMatch,
            PrefixPolicy::ExactOnly,
            PrefixPolicy::PartialOnly,
        ] {
            let other = analyze_matrix_with_policy(&m, shape, policy);
            assert!(
                best.pro_ops <= other.pro_ops,
                "{policy:?}: {} < {}",
                other.pro_ops,
                best.pro_ops
            );
        }
    }

    #[test]
    fn exact_only_has_no_pm_rows_and_vice_versa() {
        let m = sample();
        let shape = TileShape::new(128, 16);
        let em = analyze_matrix_with_policy(&m, shape, PrefixPolicy::ExactOnly);
        assert_eq!(em.pm_rows, 0);
        let pm = analyze_matrix_with_policy(&m, shape, PrefixPolicy::PartialOnly);
        assert_eq!(pm.em_rows, 0);
    }

    #[test]
    fn every_policy_stays_within_bit_ops() {
        let m = sample();
        let shape = TileShape::new(64, 16);
        for policy in PrefixPolicy::all() {
            let s = analyze_matrix_with_policy(&m, shape, policy);
            assert!(s.pro_ops <= s.bit_ops, "{policy:?}");
            assert_eq!(s.rows, 256 * 2); // rows × k-tiles
        }
    }

    #[test]
    fn exact_only_pattern_is_zero_cost_rows() {
        // Duplicates only: ExactOnly equals LargestSubset.
        let row: &[u8] = &[1, 0, 1, 1];
        let m = SpikeMatrix::from_rows_of_bits(&[row; 8]);
        let shape = TileShape::new(8, 4);
        let em = analyze_matrix_with_policy(&m, shape, PrefixPolicy::ExactOnly);
        let best = analyze_matrix_with_policy(&m, shape, PrefixPolicy::LargestSubset);
        assert_eq!(em.pro_ops, best.pro_ops);
        assert_eq!(em.pro_ops, 3); // first row pays, 7 reuse
    }
}

//! Two-prefix design-space variant (paper Table II).
//!
//! The paper's preliminary study asks how much extra sparsity a *second*
//! prefix would buy. A second prefix for row `i` must be a subset of the
//! remaining pattern after the first prefix is removed (equivalently: a
//! subset of `S_i` disjoint from the first prefix) so that both partial
//! results can be summed without double counting. The study found <6 % of
//! rows can use one and the extra density gain is small, which justifies the
//! one-prefix hardware; this module reproduces those numbers.

use crate::detect::detect_tile;
use crate::prune::select_prefix;
use serde::{Deserialize, Serialize};
use spikemat::{SpikeMatrix, TileShape};
use std::ops::AddAssign;

/// Density/prefix statistics for the one- vs two-prefix comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiPrefixStats {
    /// Matrix cells examined (`M × K`).
    pub dense_ops: u64,
    /// 1-bits (bit-sparsity ops).
    pub bit_ops: u64,
    /// Remaining ops with at most one prefix per row.
    pub one_prefix_ops: u64,
    /// Remaining ops with at most two (disjoint) prefixes per row.
    pub two_prefix_ops: u64,
    /// Rows examined.
    pub rows: u64,
    /// Rows using exactly one prefix (under the two-prefix policy).
    pub rows_with_one: u64,
    /// Rows using two prefixes.
    pub rows_with_two: u64,
}

impl MultiPrefixStats {
    /// Bit density.
    pub fn bit_density(&self) -> f64 {
        div(self.bit_ops, self.dense_ops)
    }

    /// Product density with one prefix.
    pub fn one_prefix_density(&self) -> f64 {
        div(self.one_prefix_ops, self.dense_ops)
    }

    /// Product density with two prefixes.
    pub fn two_prefix_density(&self) -> f64 {
        div(self.two_prefix_ops, self.dense_ops)
    }

    /// Fraction of rows using exactly one prefix (two-prefix policy).
    pub fn one_prefix_ratio(&self) -> f64 {
        div(self.rows_with_one, self.rows)
    }

    /// Fraction of rows using two prefixes.
    pub fn two_prefix_ratio(&self) -> f64 {
        div(self.rows_with_two, self.rows)
    }
}

fn div(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

impl AddAssign for MultiPrefixStats {
    fn add_assign(&mut self, r: Self) {
        self.dense_ops += r.dense_ops;
        self.bit_ops += r.bit_ops;
        self.one_prefix_ops += r.one_prefix_ops;
        self.two_prefix_ops += r.two_prefix_ops;
        self.rows += r.rows;
        self.rows_with_one += r.rows_with_one;
        self.rows_with_two += r.rows_with_two;
    }
}

/// Analyzes one padded tile under both the one- and two-prefix policies.
pub fn analyze_tile(tile: &SpikeMatrix, valid_rows: usize) -> MultiPrefixStats {
    let detected = detect_tile(tile);
    let pc = &detected.popcounts;
    let mut s = MultiPrefixStats::default();
    for i in 0..valid_rows.min(tile.rows()) {
        s.dense_ops += tile.cols() as u64;
        s.bit_ops += pc[i] as u64;
        s.rows += 1;
        let first = select_prefix(i, &detected.subset_candidates[i], pc);
        let Some(p1) = first else {
            s.one_prefix_ops += pc[i] as u64;
            s.two_prefix_ops += pc[i] as u64;
            continue;
        };
        let pattern1 = tile.row(i).xor(tile.row(p1));
        let rem1 = pattern1.popcount() as u64;
        s.one_prefix_ops += rem1;
        // Second prefix: a candidate subset of the *remaining* pattern —
        // i.e. disjoint from the first prefix — maximizing popcount.
        let second = detected.subset_candidates[i]
            .iter()
            .copied()
            .filter(|&j| j != p1 && pc[j] > 0 && tile.row(j).is_subset_of(&pattern1))
            .max_by_key(|&j| (pc[j], j));
        match second {
            Some(p2) => {
                let rem2 = pattern1.xor(tile.row(p2)).popcount() as u64;
                s.two_prefix_ops += rem2;
                s.rows_with_two += 1;
            }
            None => {
                s.two_prefix_ops += rem1;
                s.rows_with_one += 1;
            }
        }
    }
    s
}

/// Analyzes a whole matrix under the accelerator tile geometry.
pub fn analyze_matrix(spikes: &SpikeMatrix, shape: TileShape) -> MultiPrefixStats {
    let mut total = MultiPrefixStats::default();
    for t in spikes.tiles(shape) {
        // Restrict column accounting to valid columns by re-slicing.
        let sub = t.data.submatrix(0, 0, t.data.rows(), t.valid_cols.max(1));
        let mut s = analyze_tile(&sub, t.valid_rows);
        // analyze_tile counted cols of the sliced tile; fix dense count for
        // fully padded tiles.
        if t.valid_cols == 0 {
            s.dense_ops = 0;
        }
        total += s;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_prefix_never_worse() {
        let tile = SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 0, 0, 0, 0],
            &[0, 0, 0, 1, 1, 0],
            &[1, 0, 0, 1, 1, 1],
        ]);
        let s = analyze_tile(&tile, 3);
        // Row 2 first prefix = row 1 (pc 2), pattern = 100001; second prefix
        // row 0 ⊆ pattern → remaining 1 op.
        assert_eq!(s.one_prefix_ops, 1 + 2 + 2);
        assert_eq!(s.two_prefix_ops, 1 + 2 + 1);
        assert_eq!(s.rows_with_two, 1);
        assert_eq!(s.rows_with_one, 0);
    }

    #[test]
    fn second_prefix_must_be_disjoint() {
        // Candidates overlapping the first prefix are rejected.
        let tile = SpikeMatrix::from_rows_of_bits(&[&[1, 1, 0, 0], &[0, 1, 1, 0], &[1, 1, 1, 0]]);
        let s = analyze_tile(&tile, 3);
        // Row 2: first prefix row 1 (tie pc → larger index), pattern 1000;
        // row 0 = 1100 ⊄ 1000, so no second prefix.
        assert_eq!(s.rows_with_two, 0);
        assert_eq!(s.one_prefix_ops, s.two_prefix_ops);
    }

    #[test]
    fn densities_are_ordered() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let m = SpikeMatrix::random(128, 16, 0.3, &mut rng);
        let s = analyze_matrix(&m, TileShape::new(64, 16));
        assert!(s.two_prefix_density() <= s.one_prefix_density() + 1e-12);
        assert!(s.one_prefix_density() <= s.bit_density() + 1e-12);
        assert!(s.one_prefix_ratio() + s.two_prefix_ratio() <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_matrix_yields_zero_stats() {
        let s = analyze_matrix(&SpikeMatrix::zeros(0, 0), TileShape::new(4, 4));
        assert_eq!(s.rows, 0);
        assert_eq!(s.bit_density(), 0.0);
    }
}

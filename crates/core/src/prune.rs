//! Prefix selection and ProSparsity-pattern generation (the PPU **Pruner**,
//! Sec. V-C, and the pruning rules of Sec. III-D).
//!
//! The Detector's candidate list may contain many subset rows per query row.
//! The Pruner reduces this to **at most one prefix per row** with two rules:
//!
//! 1. *Proper-subset filter* (partial ordering): a candidate `j` for query
//!    `i` is valid iff `pc(j) < pc(i)` (Partial Match) or `pc(j) == pc(i)
//!    && j < i` (Exact Match — only the earlier duplicate may be the prefix).
//! 2. *Argmax*: among the valid candidates, keep the one with the largest
//!    popcount (the most similar prefix); ties are broken toward the larger
//!    row index, matching the paper's rule.
//!
//! The ProSparsity pattern is then `S_i ⊕ S_prefix` (hardware: one XOR unit),
//! which equals the set difference because the prefix is a subset.

use crate::detect::DetectedTile;
use serde::{Deserialize, Serialize};
use spikemat::{BitRow, SpikeMatrix};

/// How a row relates to its selected prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchKind {
    /// No usable prefix: the row is computed from scratch (pure bit sparsity).
    None,
    /// Partial Match: the prefix is a proper subset; the pattern bits remain.
    Partial,
    /// Exact Match: the prefix equals the row; zero accumulations remain.
    Exact,
}

/// The pruned spatial meta-information for one row of a tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrunedRow {
    /// Selected prefix row index within the tile, if any.
    pub prefix: Option<usize>,
    /// Relationship to the prefix.
    pub kind: MatchKind,
    /// The ProSparsity pattern: bits still to accumulate (`S_i ⊕ S_prefix`,
    /// or the row itself when there is no prefix).
    pub pattern: BitRow,
}

impl PrunedRow {
    /// Number of weight-row accumulations this row still requires per output
    /// column (the row's contribution to product density).
    pub fn remaining_ops(&self) -> usize {
        self.pattern.popcount()
    }
}

/// Selects the prefix for a single query row given its candidate list.
///
/// Returns `None` when no candidate survives the proper-subset filter.
pub fn select_prefix(query: usize, candidates: &[usize], popcounts: &[usize]) -> Option<usize> {
    candidates
        .iter()
        .copied()
        .filter(|&j| {
            popcounts[j] < popcounts[query] || (popcounts[j] == popcounts[query] && j < query)
        })
        // max_by_key returns the *last* maximal element, which implements the
        // paper's "keep the edge from the node with the largest index"
        // tie-break as long as candidates are in ascending index order.
        .max_by_key(|&j| (popcounts[j], j))
}

/// Runs the Pruner over a detected tile, producing one [`PrunedRow`] per row.
///
/// # Panics
///
/// Panics if `detected` does not match the tile's row count.
pub fn prune_tile(tile: &SpikeMatrix, detected: &DetectedTile) -> Vec<PrunedRow> {
    assert_eq!(detected.rows(), tile.rows(), "detector/tile row mismatch");
    (0..tile.rows())
        .map(|i| {
            let row = tile.row(i);
            match select_prefix(i, &detected.subset_candidates[i], &detected.popcounts) {
                Some(p) => {
                    let kind = if detected.popcounts[p] == detected.popcounts[i] {
                        MatchKind::Exact
                    } else {
                        MatchKind::Partial
                    };
                    PrunedRow {
                        prefix: Some(p),
                        kind,
                        pattern: row.xor(tile.row(p)),
                    }
                }
                None => PrunedRow {
                    prefix: None,
                    kind: MatchKind::None,
                    pattern: row.clone(),
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_tile;

    fn fig3_tile() -> SpikeMatrix {
        SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 0, 1, 1],
            &[1, 1, 0, 1],
        ])
    }

    fn pruned_fig3() -> Vec<PrunedRow> {
        let tile = fig3_tile();
        prune_tile(&tile, &detect_tile(&tile))
    }

    #[test]
    fn fig3_forest_edges() {
        // Expected ProSparsity forest of Fig. 3 (c):
        //   3 → 0, 0 → 2 or 1 → 2 (argmax over pc ties → larger index wins;
        //   pc(0)=2, pc(1)=2 so row 2's prefix is row 1), 2 → 4 (EM),
        //   1 → 5, 3 is a root, 1 has prefix 3? pc(3)=1 ⊆ 1001? 0010 ⊄ 1001.
        let p = pruned_fig3();
        assert_eq!(p[0].prefix, Some(3)); // 0010 ⊂ 1010
        assert_eq!(p[0].kind, MatchKind::Partial);
        assert_eq!(p[1].prefix, None); // nothing ⊆ 1001 except zero rows
        assert_eq!(p[2].prefix, Some(1)); // tie pc=2 between rows 0,1 → larger index 1
        assert_eq!(p[2].kind, MatchKind::Partial);
        assert_eq!(p[3].prefix, None);
        assert_eq!(p[4].prefix, Some(2)); // EM with smaller-index duplicate
        assert_eq!(p[4].kind, MatchKind::Exact);
        assert_eq!(p[5].prefix, Some(1)); // 1001 ⊂ 1101
    }

    #[test]
    fn patterns_are_xor_differences() {
        let p = pruned_fig3();
        assert_eq!(p[0].pattern, BitRow::from_bits(&[1, 0, 0, 0])); // 1010⊕0010
        assert_eq!(p[2].pattern, BitRow::from_bits(&[0, 0, 1, 0])); // 1011⊕1001
        assert!(p[4].pattern.is_zero()); // exact match
        assert_eq!(p[5].pattern, BitRow::from_bits(&[0, 1, 0, 0])); // 1101⊕1001
    }

    #[test]
    fn no_prefix_keeps_full_row() {
        let p = pruned_fig3();
        assert_eq!(p[1].pattern, BitRow::from_bits(&[1, 0, 0, 1]));
        assert_eq!(p[1].remaining_ops(), 2);
    }

    #[test]
    fn em_only_earlier_duplicate_is_prefix() {
        let tile = SpikeMatrix::from_rows_of_bits(&[&[1, 1, 0, 0], &[1, 1, 0, 0], &[1, 1, 0, 0]]);
        let p = prune_tile(&tile, &detect_tile(&tile));
        assert_eq!(p[0].prefix, None);
        // Larger-index tie-break among valid EM candidates: row 2 picks row 1.
        assert_eq!(p[1].prefix, Some(0));
        assert_eq!(p[2].prefix, Some(1));
        assert!(p[1].pattern.is_zero());
    }

    #[test]
    fn total_ops_match_paper_fig1() {
        // Fig. 1 (d): product sparsity leaves 6 OPs out of the dense 24.
        // (Matrix of Fig. 1 differs from Fig. 3 in row 4: 1101.)
        let tile = SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 1, 0, 1],
            &[1, 1, 0, 1],
        ]);
        let p = prune_tile(&tile, &detect_tile(&tile));
        let ops: usize = p.iter().map(PrunedRow::remaining_ops).sum();
        assert_eq!(ops, 6);
    }

    #[test]
    fn prefix_is_always_subset() {
        let tile = fig3_tile();
        let p = pruned_fig3();
        for (i, row) in p.iter().enumerate() {
            if let Some(pre) = row.prefix {
                assert!(tile.row(pre).is_subset_of(tile.row(i)));
                assert!(tile.row(pre).popcount() > 0);
            }
        }
    }

    #[test]
    fn select_prefix_empty_candidates() {
        assert_eq!(select_prefix(0, &[], &[2]), None);
    }
}

//! The ProSparsity forest (paper Sec. III-D).
//!
//! After pruning, every row has at most one prefix, so the prefix edges form
//! a directed forest: roots are rows computed from scratch, and each non-root
//! reuses its parent's inner-product result. The forest's topological order
//! (root → leaves) is the processing-order constraint the Dispatcher must
//! respect.

use crate::prune::{MatchKind, PrunedRow};
use serde::{Deserialize, Serialize};

/// A pruned one-prefix-per-row forest over the rows of one tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProSparsityForest {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    kinds: Vec<MatchKind>,
}

impl ProSparsityForest {
    /// Builds the forest from the Pruner's per-row output.
    ///
    /// # Panics
    ///
    /// Panics if a prefix index is out of range or a row is its own prefix.
    pub fn from_pruned(rows: &[PrunedRow]) -> Self {
        let m = rows.len();
        let mut parent = Vec::with_capacity(m);
        let mut children = vec![Vec::new(); m];
        let mut kinds = Vec::with_capacity(m);
        for (i, r) in rows.iter().enumerate() {
            if let Some(p) = r.prefix {
                assert!(p < m, "prefix {p} out of range for {m} rows");
                assert_ne!(p, i, "row {i} cannot be its own prefix");
                children[p].push(i);
            }
            parent.push(r.prefix);
            kinds.push(r.kind);
        }
        Self {
            parent,
            children,
            kinds,
        }
    }

    /// Number of rows (nodes).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the forest has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The prefix (parent) of row `i`, if any.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// The suffix rows that reuse row `i`'s result.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Match kind of row `i` with respect to its prefix.
    pub fn kind(&self, i: usize) -> MatchKind {
        self.kinds[i]
    }

    /// Root rows (no prefix).
    pub fn roots(&self) -> impl Iterator<Item = usize> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
    }

    /// Depth of node `i` (roots have depth 0).
    ///
    /// This is the reuse-chain length: the number of prefix hops until a row
    /// that was computed from scratch.
    pub fn depth(&self, i: usize) -> usize {
        let mut d = 0;
        let mut cur = i;
        while let Some(p) = self.parent[cur] {
            d += 1;
            cur = p;
            assert!(
                d <= self.len(),
                "cycle detected in ProSparsity forest at row {i}"
            );
        }
        d
    }

    /// Maximum node depth (`d` in the paper's O(m·d) slow-dispatch bound).
    pub fn max_depth(&self) -> usize {
        (0..self.len()).map(|i| self.depth(i)).max().unwrap_or(0)
    }

    /// Verifies the structural invariants:
    ///
    /// * acyclicity (every chain terminates at a root),
    /// * child lists consistent with parents.
    ///
    /// Returns `true` when all hold. Primarily for property tests.
    pub fn validate(&self) -> bool {
        for i in 0..self.len() {
            // depth() panics on cycles; catch via length bound instead.
            let mut seen = 0;
            let mut cur = i;
            while let Some(p) = self.parent[cur] {
                seen += 1;
                if seen > self.len() {
                    return false;
                }
                cur = p;
            }
        }
        for (p, kids) in self.children.iter().enumerate() {
            for &c in kids {
                if self.parent[c] != Some(p) {
                    return false;
                }
            }
        }
        true
    }

    /// Counts nodes by match kind: `(no-prefix, partial, exact)`.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut none = 0;
        let mut partial = 0;
        let mut exact = 0;
        for k in &self.kinds {
            match k {
                MatchKind::None => none += 1,
                MatchKind::Partial => partial += 1,
                MatchKind::Exact => exact += 1,
            }
        }
        (none, partial, exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_tile;
    use crate::prune::prune_tile;
    use spikemat::SpikeMatrix;

    fn fig3_forest() -> ProSparsityForest {
        let tile = SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 0, 1, 1],
            &[1, 1, 0, 1],
        ]);
        ProSparsityForest::from_pruned(&prune_tile(&tile, &detect_tile(&tile)))
    }

    #[test]
    fn roots_and_parents() {
        let f = fig3_forest();
        assert_eq!(f.roots().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(f.parent(0), Some(3));
        assert_eq!(f.parent(2), Some(1));
        assert_eq!(f.parent(4), Some(2));
        assert_eq!(f.parent(5), Some(1));
    }

    #[test]
    fn children_are_inverse_of_parent() {
        let f = fig3_forest();
        assert_eq!(f.children(1), &[2, 5]);
        assert_eq!(f.children(3), &[0]);
        assert!(f.children(0).is_empty());
        assert!(f.validate());
    }

    #[test]
    fn depths() {
        let f = fig3_forest();
        assert_eq!(f.depth(1), 0);
        assert_eq!(f.depth(2), 1);
        assert_eq!(f.depth(4), 2); // 4 → 2 → 1
        assert_eq!(f.max_depth(), 2);
    }

    #[test]
    fn kind_counts_sum_to_rows() {
        let f = fig3_forest();
        let (n, p, e) = f.kind_counts();
        assert_eq!(n + p + e, f.len());
        assert_eq!(e, 1); // row 4 is the exact match
        assert_eq!(n, 2); // rows 1 and 3
        assert_eq!(p, 3);
    }

    #[test]
    fn empty_forest() {
        let f = ProSparsityForest::from_pruned(&[]);
        assert!(f.is_empty());
        assert_eq!(f.max_depth(), 0);
        assert!(f.validate());
    }

    #[test]
    #[should_panic(expected = "own prefix")]
    fn self_prefix_rejected() {
        use crate::prune::PrunedRow;
        use spikemat::BitRow;
        let bad = PrunedRow {
            prefix: Some(0),
            kind: MatchKind::Exact,
            pattern: BitRow::zeros(4),
        };
        let _ = ProSparsityForest::from_pruned(&[bad]);
    }
}

//! End-to-end engine correctness: the trace execution engine (plan cache +
//! buffer pooling + row-tile parallelism) must be bit-identical to the
//! per-call `prosparsity_gemm` loop — and to the bit-sparse reference —
//! layer by layer on whole model traces, whatever the cache capacity,
//! eviction pressure, or temporal correlation of the input.

use prosperity::core::attention::{spiking_qk, spiking_qk_with};
use prosperity::core::engine::{threshold_spikes, Engine, EngineConfig};
use prosperity::core::exec::prosparsity_gemm;
use prosperity::models::tracegen::{TraceGen, TraceGenParams};
use prosperity::models::Workload;
use prosperity::spikemat::gemm::{spiking_gemm, OutputMatrix};
use prosperity::spikemat::{SpikeMatrix, TileShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Acceptance property: running a calibrated fig8-suite trace through one
/// engine gives, for every layer, exactly the output of the naive per-call
/// `prosparsity_gemm` loop (which is itself property-tested against the
/// bit-sparse reference).
#[test]
fn engine_is_bit_identical_to_per_call_loop_on_model_trace() {
    let workload = Workload::spikingbert_sst2();
    let trace = workload.generate_trace(0.04);
    let tile = TileShape::prosperity_default();
    let mut engine = Engine::new(EngineConfig::new(tile, 256));
    let weights: Vec<_> = trace
        .layers
        .iter()
        .map(|l| l.synthetic_weights(7))
        .collect();
    let mut out = OutputMatrix::zeros(0, 0);
    for (layer, w) in trace.layers.iter().zip(&weights) {
        engine.gemm_into(&layer.spikes, w, &mut out);
        assert_eq!(
            out,
            prosparsity_gemm(&layer.spikes, w, tile),
            "layer {} diverged",
            layer.spec.name
        );
    }
    assert_eq!(engine.stats().gemms as usize, trace.layers.len());
}

/// Temporally-correlated timesteps: high persistence must produce real
/// cache hits, and every step must stay exact despite the reuse.
#[test]
fn correlated_timesteps_hit_cache_and_stay_exact() {
    let mut rng = StdRng::seed_from_u64(77);
    let gen = TraceGen::new(TraceGenParams::uncorrelated(0.25));
    // A tile hits only when all of its rows persisted, so the per-row rate
    // compounds over the 64-row tile height: 0.995^64 ≈ 0.73 per tile.
    let steps = gen.generate_timesteps(6, 256, 32, 0.995, &mut rng);
    let w = prosperity::spikemat::gemm::WeightMatrix::from_fn(32, 8, |r, c| {
        (r * 13 + c * 5) as i64 - 40
    });
    let mut engine = Engine::new(EngineConfig::new(TileShape::new(64, 16), 512));
    let mut out = OutputMatrix::zeros(0, 0);
    for (t, spikes) in steps.iter().enumerate() {
        engine.gemm_into(spikes, &w, &mut out);
        assert_eq!(out, spiking_gemm(spikes, &w), "timestep {t}");
    }
    let stats = engine.stats();
    assert!(
        stats.hit_rate() > 0.3,
        "persistence 0.995 should produce hits: {stats:?}"
    );
}

/// The serial oracle and the default (possibly parallel) path agree on
/// whole traces, including under eviction pressure from a tiny cache.
#[test]
fn engine_serial_and_parallel_agree_under_eviction() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut par = Engine::new(EngineConfig::new(TileShape::new(16, 8), 3));
    let mut ser = Engine::new(EngineConfig::new(TileShape::new(16, 8), 3));
    for _ in 0..8 {
        let m = rng.gen_range(1..80);
        let k = rng.gen_range(1..40);
        let n = rng.gen_range(1..6);
        let s = SpikeMatrix::random(m, k, rng.gen_range(0.05..0.6), &mut rng);
        let w = prosperity::spikemat::gemm::WeightMatrix::from_fn(k, n, |_, _| {
            rng.gen_range(-20i64..20)
        });
        let mut a = OutputMatrix::zeros(0, 0);
        let mut b = OutputMatrix::zeros(0, 0);
        par.gemm_into(&s, &w, &mut a);
        ser.gemm_into_serial(&s, &w, &mut b);
        assert_eq!(a, b);
        // Wall-clock timing counters legitimately differ between the two
        // runs; everything else must match exactly.
        let (mut p, mut s) = (par.stats(), ser.stats());
        p.plan_ns = 0;
        p.exec_ns = 0;
        s.plan_ns = 0;
        s.exec_ns = 0;
        assert_eq!(p, s, "cache behaviour must match");
    }
}

/// Attention lowered through the engine equals the direct lowering, and a
/// multi-timestep attention stream reuses cached query tiles.
#[test]
fn engine_attention_is_exact_and_reuses_tiles() {
    let mut rng = StdRng::seed_from_u64(1234);
    let tile = TileShape::new(32, 16);
    let mut engine = Engine::new(EngineConfig::new(tile, 128));
    let gen = TraceGen::new(TraceGenParams::uncorrelated(0.2));
    let keys = SpikeMatrix::random(24, 48, 0.25, &mut rng);
    let qs = gen.generate_timesteps(4, 64, 48, 0.95, &mut rng);
    let mut scores = OutputMatrix::zeros(0, 0);
    for q in &qs {
        spiking_qk_with(&mut engine, q, &keys, &mut scores);
        assert_eq!(scores, spiking_qk(q, &keys, tile));
    }
    assert!(engine.stats().cache_hits > 0);
}

/// Chained layer execution (threshold → next layer) stays exact across
/// repeated calls through warm pooled buffers.
#[test]
fn engine_chain_is_stable_across_repeated_runs() {
    let mut rng = StdRng::seed_from_u64(55);
    let input = SpikeMatrix::random(48, 20, 0.3, &mut rng);
    let dims = [20usize, 16, 12];
    let layers: Vec<_> = dims
        .windows(2)
        .map(|d| {
            prosperity::spikemat::gemm::WeightMatrix::from_fn(d[0], d[1], |_, _| {
                rng.gen_range(-4i64..5)
            })
        })
        .collect();
    // Reference chain via the naive loop.
    let mut cur = input.clone();
    for w in &layers {
        let out = spiking_gemm(&cur, w);
        let mut next = SpikeMatrix::zeros(0, 0);
        threshold_spikes(&out, 3, &mut next);
        cur = next;
    }
    let mut engine = Engine::new(EngineConfig::new(TileShape::new(16, 16), 64));
    let mut got = SpikeMatrix::zeros(0, 0);
    for _ in 0..3 {
        engine.forward_chain(&input, &layers, 3, &mut got);
        assert_eq!(got, cur);
    }
}

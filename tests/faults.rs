//! Fault-tolerance properties of the serving runtime, driven by the
//! deterministic fault-injection harness (`--features fault-injection`).
//!
//! The acceptance property: under **any** injected single fault — a lane
//! panic, a panic under a shard lock, snapshot bit rot, a snapshot-store
//! IO error, or a rotted gossip peer file — the serving loop never aborts,
//! every surviving lane's output stays bit-identical to the serial
//! private-cache oracle, and the fault is visible in the scheduler's
//! counters.
#![cfg(feature = "fault-injection")]

use prosperity::core::engine::faults::{self, FaultPlan};
use prosperity::core::engine::{
    AdmissionConfig, BatchPolicy, Engine, EngineConfig, PlanSnapshot, ServiceConfig, ServingLoop,
    SharedPlanCache, SnapshotStore, TraceStep,
};
use prosperity::models::tracegen::{TraceGen, TraceGenParams};
use prosperity::spikemat::gemm::{OutputMatrix, WeightMatrix};
use prosperity::spikemat::TileShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A multi-tenant batch: per tenant, a timestep stream and its own weights.
struct TenantBatch {
    streams: Vec<Vec<prosperity::spikemat::SpikeMatrix>>,
    weights: Vec<WeightMatrix<i64>>,
}

fn random_batch(rng: &mut StdRng) -> TenantBatch {
    let tenants = rng.gen_range(2..=4);
    let steps = rng.gen_range(2..=4);
    let rows = rng.gen_range(20..70);
    let k = rng.gen_range(10..50);
    let n = rng.gen_range(1..6);
    let gen = TraceGen::new(TraceGenParams::uncorrelated(rng.gen_range(0.1..0.5)));
    let streams = gen.generate_tenant_streams(tenants, steps, rows, k, 0.9, 0.9, rng);
    let weights = (0..tenants)
        .map(|_| WeightMatrix::from_fn(k, n, |_, _| rng.gen_range(-30i64..30)))
        .collect();
    TenantBatch { streams, weights }
}

/// The oracle: each tenant alone through a serial private-cache session.
fn serial_private_oracle(batch: &TenantBatch, config: EngineConfig) -> Vec<Vec<OutputMatrix<i64>>> {
    batch
        .streams
        .iter()
        .zip(&batch.weights)
        .map(|(stream, w)| {
            let mut engine = Engine::new(config);
            let mut outs = Vec::with_capacity(stream.len());
            for spikes in stream {
                let mut out = OutputMatrix::zeros(0, 0);
                engine.gemm_into_serial(spikes, w, &mut out);
                outs.push(out);
            }
            outs
        })
        .collect()
}

fn traces_of(batch: &TenantBatch) -> Vec<Vec<TraceStep<'_, i64>>> {
    batch
        .streams
        .iter()
        .zip(&batch.weights)
        .map(|(stream, w)| stream.iter().map(|s| (s, w)).collect())
        .collect()
}

/// A snapshot directory removed on drop, unique per test.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("prosperity_faults_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The tentpole acceptance property. For every seed, [`FaultPlan::seeded`]
/// arms exactly one fault of one of the four kinds somewhere in the serving
/// path; whatever it was, the loop completes, survivors match the oracle
/// bit-for-bit, and the fired fault is accounted in the stats.
#[test]
fn any_single_injected_fault_leaves_survivors_bit_identical() {
    faults::silence_injected_panics();
    let dir = TempDir::new("property");
    let mut rng = StdRng::seed_from_u64(0xFA17);
    for seed in 0..24u64 {
        let batch = random_batch(&mut rng);
        let tenants = batch.streams.len();
        let steps = batch.streams[0].len();
        let tile = TileShape::new(rng.gen_range(4..=16), rng.gen_range(4..=16));
        let config = EngineConfig::new(tile, rng.gen_range(8..64));
        let oracle = serial_private_oracle(&batch, config);
        let traces = traces_of(&batch);

        // Fresh store per seed so retention/quarantine counters are local.
        let store_dir = dir.0.join(format!("seed{seed}"));
        let store = Arc::new(SnapshotStore::new(&store_dir, 16).expect("store"));
        let service = ServiceConfig::default().with_snapshots(2, 256);
        let mut serving = ServingLoop::new(config, BatchPolicy::RoundRobin, service)
            .with_snapshot_store(Arc::clone(&store));

        let plan = FaultPlan::seeded(seed, tenants, steps);
        let guard = faults::install(plan);
        let mut got: Vec<Vec<Option<OutputMatrix<i64>>>> =
            oracle.iter().map(|outs| vec![None; outs.len()]).collect();
        serving.run(&traces, |tenant, step, out| {
            got[tenant][step] = Some(out.clone());
        });
        let _ = serving.take_snapshots(); // join any in-flight export
        let fired = guard.fired(); // sampled before our own load below
        drop(guard);

        // Survivors are bit-identical; a faulted lane produced an exact
        // prefix and then went silent.
        let quarantined = serving.scheduler().quarantined();
        assert!(quarantined.len() <= 1, "seed {seed}: single fault");
        for (tenant, outs) in oracle.iter().enumerate() {
            let fault = quarantined.iter().find(|f| f.lane == tenant);
            for (step, want) in outs.iter().enumerate() {
                match (&got[tenant][step], fault) {
                    (Some(out), _) => assert_eq!(out, want, "seed {seed} t{tenant} s{step}"),
                    (None, Some(f)) => assert!(
                        step >= f.step,
                        "seed {seed} t{tenant}: silent only from the fault step"
                    ),
                    (None, None) => panic!("seed {seed} t{tenant} s{step}: survivor lost a step"),
                }
            }
        }

        // Every fired fault is visible in the counters.
        let stats = serving.stats();
        if fired.lane_panic || fired.shard_panic {
            assert_eq!(stats.lane_faults, 1, "seed {seed}: {stats:?}");
            assert_eq!(quarantined.len(), 1, "seed {seed}");
        } else {
            assert_eq!(stats.lane_faults, 0, "seed {seed}: {stats:?}");
        }
        if fired.shard_panic {
            assert!(stats.shard_resets >= 1, "seed {seed}: {stats:?}");
        }
        if fired.fail_io {
            // Every IO op during the run belongs to a store save, and a
            // failed save is retried with backoff.
            assert!(stats.snapshot_io_retries >= 1, "seed {seed}: {stats:?}");
        }
        // Whatever happened on disk, recovery never aborts: the newest
        // *valid* snapshot (if any) loads, and injected bit rot is caught,
        // quarantined, and counted — lazily, when the rotted file becomes
        // the newest candidate (peel newer valid files off to prove it).
        let loaded = store.load_latest_valid().expect("recovery never errors");
        if fired.corrupt_snapshot {
            while store.quarantined() == 0 {
                let files = store.files().expect("list");
                let newest = files
                    .last()
                    .unwrap_or_else(|| panic!("seed {seed}: rot must surface before disk is empty"))
                    .clone();
                std::fs::remove_file(newest).expect("remove");
                let _ = store.load_latest_valid().expect("recovery never errors");
            }
            assert!(store.quarantined() >= 1, "seed {seed}");
            assert_eq!(
                serving.stats().snapshots_quarantined,
                store.quarantined(),
                "seed {seed}"
            );
        } else if stats.snapshots_exported > 0 && !fired.fail_io {
            assert!(loaded.is_some(), "seed {seed}: clean exports must load");
            assert_eq!(store.quarantined(), 0, "seed {seed}");
        }
    }
}

/// Tile-granular preemption under fault: a lane quarantined *mid-slice* —
/// after some but not all row-tiles of its in-flight GeMM executed — never
/// surfaces the partial output (the sink fires only on a GeMM's completing
/// slice), and every surviving lane stays bit-exact under sub-GeMM quanta.
#[test]
fn lane_quarantined_mid_slice_leaves_survivors_bit_exact() {
    use prosperity::core::engine::BatchScheduler;
    faults::silence_injected_panics();
    let mut rng = StdRng::seed_from_u64(0x51FA);
    for trial in 0..6u64 {
        let batch = random_batch(&mut rng);
        let tile = TileShape::new(8, 8);
        let config = EngineConfig::new(tile, rng.gen_range(8..64));
        let oracle = serial_private_oracle(&batch, config);
        let traces = traces_of(&batch);
        // Arm the *second* slice visit of lane 1's step-1 GeMM: with 20+
        // rows under an 8-row tile every GeMM spans ≥ 3 row-tiles, so at
        // quantum 1 the panic lands genuinely mid-GeMM — one row-tile
        // executed, the rest never run.
        let guard = faults::install(FaultPlan::lane_panic_at_visit(1, 1, 1));
        let mut sched = BatchScheduler::new(config, BatchPolicy::RoundRobin).with_slice_quantum(1);
        let mut got: Vec<Vec<Option<OutputMatrix<i64>>>> =
            oracle.iter().map(|outs| vec![None; outs.len()]).collect();
        sched.run(&traces, |tenant, step, out| {
            got[tenant][step] = Some(out.clone());
        });
        assert!(guard.fired().lane_panic, "trial {trial}");
        drop(guard);
        let quarantined = sched.quarantined();
        assert_eq!(quarantined.len(), 1, "trial {trial}");
        assert_eq!(
            (quarantined[0].lane, quarantined[0].step),
            (1, 1),
            "trial {trial}"
        );
        // Row-tile accounting pins the quarantine mid-GeMM: lane 1 ran all
        // of step 0 plus exactly one row-tile of step 1 (the panicking
        // visit itself executed nothing and charged nothing).
        let gm = batch.streams[1][0].rows().div_ceil(8) as u64;
        let stats = sched.scheduler_stats();
        assert_eq!(stats.lane_row_tiles[1], gm + 1, "trial {trial}");
        assert_eq!(stats.lane_steps[1], 1, "trial {trial}");
        // The partial GeMM's output was never observed; completed steps
        // were exact; survivors served every step bit-identically.
        for (tenant, outs) in oracle.iter().enumerate() {
            for (step, want) in outs.iter().enumerate() {
                match &got[tenant][step] {
                    Some(out) => assert_eq!(out, want, "trial {trial} t{tenant} s{step}"),
                    None => assert!(
                        tenant == 1 && step >= 1,
                        "trial {trial} t{tenant} s{step}: survivor lost a step"
                    ),
                }
            }
        }
    }
}

/// Lifecycle edge: `begin_batch` after a quarantined lane hands the next
/// batch fresh lanes — the quarantine is lifted, the new run completes on
/// every lane, and no fault counters leak across the batch boundary.
#[test]
fn begin_batch_after_a_quarantined_lane_starts_clean() {
    faults::silence_injected_panics();
    let mut rng = StdRng::seed_from_u64(0xC1EA);
    let batch = random_batch(&mut rng);
    let config =
        EngineConfig::new(TileShape::new(8, 8), 128).with_admission(AdmissionConfig::default());
    let oracle = serial_private_oracle(&batch, config);
    let traces = traces_of(&batch);
    let service = ServiceConfig::default();
    let mut serving = ServingLoop::new(config, BatchPolicy::RoundRobin, service);

    let guard = faults::install(FaultPlan::lane_panic(0, 1));
    serving.run_batch(&traces, |_, _, _| {});
    assert!(guard.fired().lane_panic);
    drop(guard);
    assert_eq!(serving.stats().lane_faults, 1);
    let tenants_after_fault = serving.shared_cache().stats().tenants;

    // The next batch (no faults armed) starts clean: every lane serves
    // every step exactly, nothing remembers the quarantine, and the new
    // lanes are fresh tenant ids rather than the faulted batch's.
    let mut executed = 0usize;
    serving.run_batch(&traces, |tenant, step, out| {
        assert_eq!(out, &oracle[tenant][step], "t{tenant} s{step}");
        executed += 1;
    });
    assert_eq!(executed, oracle.iter().map(Vec::len).sum::<usize>());
    assert_eq!(serving.stats().lane_faults, 0, "no stats leak");
    assert!(serving.scheduler().quarantined().is_empty());
    assert!(
        serving.shared_cache().stats().tenants > tenants_after_fault,
        "begin_batch mints fresh tenant ids"
    );
}

/// Lifecycle edge: a background snapshot export racing a shard reset. The
/// export walks the cache shard by shard while an injected panic poisons
/// one shard mid-run; every snapshot it produced must still decode, import
/// into a fresh cache, and load back from the crash-safe store.
#[test]
fn snapshot_export_races_a_shard_reset() {
    faults::silence_injected_panics();
    let dir = TempDir::new("export_race");
    let mut rng = StdRng::seed_from_u64(0x5AFE);
    let batch = random_batch(&mut rng);
    let tile = TileShape::new(8, 8);
    let config = EngineConfig::new(tile, 512);
    let oracle = serial_private_oracle(&batch, config);
    let traces = traces_of(&batch);
    let store = Arc::new(SnapshotStore::new(&dir.0, 4).expect("store"));
    let service = ServiceConfig::default().with_snapshots(2, 512);
    let mut serving = ServingLoop::new(config, BatchPolicy::RoundRobin, service)
        .with_snapshot_store(Arc::clone(&store));

    let guard = faults::install(FaultPlan::shard_panic(3));
    serving.run(&traces, |tenant, step, out| {
        assert_eq!(out, &oracle[tenant][step], "t{tenant} s{step}");
    });
    let fired = guard.fired().shard_panic;
    drop(guard);

    let snapshots = serving.take_snapshots();
    assert!(!snapshots.is_empty(), "cadence must fire");
    for (i, snap) in snapshots.iter().enumerate() {
        let decoded =
            PlanSnapshot::decode(snap.encode()).unwrap_or_else(|e| panic!("snap {i}: {e}"));
        let restored = SharedPlanCache::new(512);
        let report = restored.import(&decoded, tile);
        assert_eq!(report.requested, decoded.len(), "snap {i}");
    }
    let loaded = store.load_latest_valid().expect("load");
    assert!(loaded.is_some(), "persisted exports survive the reset");
    // The store-level codec counters surface through the serving stats:
    // exports encoded bytes/plans, and the load above read some back.
    let stats = serving.stats();
    assert!(stats.snapshot_bytes_encoded > 0, "{stats:?}");
    assert!(stats.snapshot_bytes_loaded > 0, "{stats:?}");
    assert!(
        stats.snapshot_plans_encoded >= stats.snapshot_plans_loaded,
        "a load can only see plans some export encoded: {stats:?}"
    );
    if fired {
        let stats = serving.stats();
        assert_eq!(stats.lane_faults, 1, "{stats:?}");
        assert!(stats.shard_resets >= 1, "{stats:?}");
    }
}

/// Fleet-mode acceptance property: a **hostile peer snapshot** — rotted by
/// a flipped byte or a truncation, [`FaultPlan::seeded_peer_rot`] picks —
/// is quarantined to `*.bad` by the gossip sweep and never poisons the
/// importing node's warm cache: every output of the gossiping node stays
/// bit-identical to the no-gossip serial oracle, and nothing from the
/// rotted file is adopted.
#[test]
fn rotted_peer_snapshot_is_quarantined_and_never_poisons_serving() {
    faults::silence_injected_panics();
    let dir = TempDir::new("peer_rot");
    let mut rng = StdRng::seed_from_u64(0x60A7);
    for seed in 0..12u64 {
        let batch = random_batch(&mut rng);
        let tile = TileShape::new(8, 8);
        let config = EngineConfig::new(tile, 256);
        let oracle = serial_private_oracle(&batch, config);
        let traces = traces_of(&batch);

        // The peer: a warm donor whose store directory holds one valid
        // snapshot, which the joiner gossips in cleanly first.
        let peer_dir = dir.0.join(format!("seed{seed}"));
        let peer_store = SnapshotStore::new(&peer_dir, 16).expect("peer store");
        let mut donor = ServingLoop::new(config, BatchPolicy::RoundRobin, ServiceConfig::default());
        donor.run(&traces, |_, _, _| {});
        let exported = donor.shared_cache().export_hottest(256);
        assert!(!exported.is_empty(), "seed {seed}: donor must be warm");
        peer_store.save(&exported).expect("save");

        let service = ServiceConfig::default().with_gossip(1, vec![peer_dir.clone()]);
        let mut joiner = ServingLoop::new(config, BatchPolicy::RoundRobin, service);
        joiner.run(&traces, |tenant, step, out| {
            assert_eq!(out, &oracle[tenant][step], "seed {seed} t{tenant} s{step}");
        });
        let warm = joiner.stats();
        assert!(warm.gossip_plans_adopted > 0, "seed {seed}: {warm:?}");

        // The donor exports again, but this time the file the sweep reads
        // is rotted in flight. The joiner's cache is warm now; the rot
        // must be caught by decode, quarantined, and change nothing.
        peer_store
            .save(&donor.shared_cache().export_hottest(256))
            .expect("save");
        let guard = faults::install(FaultPlan::seeded_peer_rot(seed));
        joiner.run(&traces, |tenant, step, out| {
            assert_eq!(out, &oracle[tenant][step], "seed {seed} t{tenant} s{step}");
        });
        let fired = guard.fired().rot_peer;
        drop(guard);
        assert!(
            fired,
            "seed {seed}: every-step sweeps must read the new file"
        );

        let stats = joiner.stats();
        assert_eq!(
            stats.gossip_plans_adopted, warm.gossip_plans_adopted,
            "seed {seed}: nothing from the rotted file may be adopted"
        );
        let bad: Vec<_> = std::fs::read_dir(&peer_dir)
            .expect("list peer dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "bad"))
            .collect();
        assert_eq!(
            bad.len(),
            1,
            "seed {seed}: rotted file quarantined to *.bad"
        );
        // The first (valid) snapshot is still on disk and still loads —
        // quarantine is surgical, not a directory wipe.
        assert!(
            peer_store.load_latest_valid().expect("walk").is_some(),
            "seed {seed}"
        );
    }
}

/// Fleet-mode lifecycle edge: a gossip import racing the node's **own**
/// background export — the peer directory under the sweep is the store the
/// export thread is writing into. Saves are atomic (temp file + rename),
/// so the sweep must never observe a torn file: no quarantine, no decode
/// failure, outputs bit-identical throughout.
#[test]
fn self_gossip_import_races_local_export() {
    faults::silence_injected_panics();
    let dir = TempDir::new("self_gossip");
    let mut rng = StdRng::seed_from_u64(0x5E1F);
    let batch = random_batch(&mut rng);
    let tile = TileShape::new(8, 8);
    let config = EngineConfig::new(tile, 256);
    let oracle = serial_private_oracle(&batch, config);
    let traces = traces_of(&batch);
    let store = Arc::new(SnapshotStore::new(&dir.0, 4).expect("store"));
    // Export every 2 steps from the background thread, sweep the same
    // directory every step from the serving thread.
    let service = ServiceConfig::default()
        .with_snapshots(2, 256)
        .with_gossip(1, vec![dir.0.clone()]);
    let mut serving = ServingLoop::new(config, BatchPolicy::RoundRobin, service)
        .with_snapshot_store(Arc::clone(&store));
    for round in 0..3 {
        serving.run(&traces, |tenant, step, out| {
            assert_eq!(
                out, &oracle[tenant][step],
                "round {round} t{tenant} s{step}"
            );
        });
        let _ = serving.take_snapshots();
    }
    let stats = serving.stats();
    assert!(stats.snapshots_exported > 0, "{stats:?}");
    assert!(
        stats.gossip_imports > 0,
        "sweeps must see the local exports: {stats:?}"
    );
    assert_eq!(
        store.quarantined(),
        0,
        "atomic saves must never surface a torn read: {stats:?}"
    );
    assert_eq!(stats.lane_faults, 0, "{stats:?}");
}

/// Lifecycle edge: admission-table GC keeps sweeping while a lane sits in
/// quarantine. During the faulted run the loop stays up and the survivors'
/// outputs stay exact; at the next batch boundary the quarantined batch's
/// windows (the faulted lane's included) go idle and the sweeps collect
/// them, so a fault cannot pin the admission table.
#[test]
fn admission_gc_collects_a_quarantined_lanes_window() {
    faults::silence_injected_panics();
    let mut rng = StdRng::seed_from_u64(0x6C11);
    let tile = TileShape::new(16, 16);
    let config = EngineConfig::new(tile, 2048).with_admission(AdmissionConfig::default());
    // GC every 2 executed steps; a window may idle for at most 1 sweep.
    let service = ServiceConfig::default().with_gc(2, 1);
    let mut serving = ServingLoop::<i64>::new(config, BatchPolicy::RoundRobin, service);
    let w = WeightMatrix::from_fn(32, 3, |r, c| (r + c) as i64 - 4);
    // One hot matrix replayed 12 steps by 3 lanes; lane 0 faults at its
    // third step, after its admission window exists.
    let spikes = prosperity::spikemat::SpikeMatrix::random(32, 32, 0.3, &mut rng);
    let traces: Vec<Vec<TraceStep<'_, i64>>> = (0..3).map(|_| vec![(&spikes, &w); 12]).collect();
    let mut oracle_engine = Engine::new(EngineConfig::new(tile, 2048));
    let mut want = OutputMatrix::zeros(0, 0);
    oracle_engine.gemm_into_serial(&spikes, &w, &mut want);

    let guard = faults::install(FaultPlan::lane_panic(0, 2));
    let mut per_lane = [0usize; 3];
    serving.run_batch(&traces, |lane, _, out| {
        assert_eq!(out, &want, "lane {lane}");
        per_lane[lane] += 1;
    });
    assert!(guard.fired().lane_panic);
    drop(guard);

    assert_eq!(per_lane, [2, 12, 12], "survivors run to completion");
    let faulted = serving.stats();
    assert_eq!(faulted.lane_faults, 1, "{faulted:?}");
    assert_eq!(serving.shared_cache().stats().tenants, 3);

    // Next batch: fresh lanes. The faulted batch's windows — quarantined
    // lane included — are no longer live and the continuing sweeps evict
    // them, while the new batch serves exactly.
    serving.run_batch(&traces, |lane, _, out| {
        assert_eq!(out, &want, "fresh lane {lane}");
    });
    let stats = serving.stats();
    assert_eq!(stats.lane_faults, 0, "quarantine does not leak");
    assert!(
        stats.gc_evictions >= 3,
        "the faulted batch's windows must be collected: {stats:?}"
    );
    assert_eq!(
        serving.shared_cache().stats().tenants,
        3,
        "only the live batch's windows remain: {stats:?}"
    );
}

//! Property tests on the substrates: im2col/convolution equivalence, LIF
//! dynamics, encoders, and the trace generator's statistical contracts —
//! over seeded random inputs.

use prosperity::models::{TraceGen, TraceGenParams};
use prosperity::neuron::encode::{direct_code, rate_code};
use prosperity::neuron::{FsNeuron, FsParams, LifNeuron, LifParams, ResetMode};
use prosperity::spikemat::gemm::WeightMatrix;
use prosperity::spikemat::im2col::{im2col_equals_direct, Conv2dParams, SpikeFeatureMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn im2col_equals_direct_convolution() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut done = 0;
    while done < 32 {
        let c = rng.gen_range(1..4);
        let cout = rng.gen_range(1..5);
        let size = rng.gen_range(3..9);
        let kernel = rng.gen_range(1..4);
        let stride = rng.gen_range(1..3);
        let padding = rng.gen_range(0..2);
        if size + 2 * padding < kernel {
            continue;
        }
        done += 1;
        let params = Conv2dParams::square(c, cout, size, kernel, stride, padding);
        let mut input = SpikeFeatureMap::zeros(c, size, size);
        let n_bits = rng.gen_range(0..200);
        for _ in 0..n_bits {
            let idx = rng.gen_range(0..c * size * size);
            input.set(idx / (size * size), (idx / size) % size, idx % size, true);
        }
        let k = c * kernel * kernel;
        let wseed: i32 = rng.gen_range(i32::MIN / 2..i32::MAX / 2);
        let w = WeightMatrix::from_fn(k, cout, |r, col| {
            i64::from(wseed).wrapping_mul(17) + (r * cout + col) as i64 * 13 - 50
        });
        assert!(im2col_equals_direct(&input, &w, &params));
    }
}

#[test]
fn lif_spikes_only_at_threshold() {
    let mut rng = StdRng::seed_from_u64(22);
    for _ in 0..32 {
        let threshold = rng.gen_range(0.5f32..2.0);
        let leak = rng.gen_range(0.0f32..1.0);
        let steps = rng.gen_range(1..50);
        let mut n = LifNeuron::new(LifParams {
            threshold,
            leak,
            reset: ResetMode::Hard(0.0),
        });
        for _ in 0..steps {
            let current = rng.gen_range(-2.0f32..2.0);
            let before = n.potential();
            let fired = n.step(current);
            let integrated = leak * before + current;
            assert_eq!(fired, integrated >= threshold);
            if fired {
                assert_eq!(n.potential(), 0.0);
            }
        }
    }
}

#[test]
fn fs_neuron_spike_cap_and_monotone_decode() {
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..32 {
        let v = rng.gen_range(0.0f32..2.0);
        let max_spikes = rng.gen_range(1..5);
        let n = FsNeuron::new(FsParams {
            window: 8,
            full_scale: 2.0,
            max_spikes,
        });
        let spikes = n.encode(v);
        assert!(spikes.iter().map(|&s| s as usize).sum::<usize>() <= max_spikes);
        // Decoded value never exceeds the encoded one (greedy underestimates).
        assert!(n.decode(&spikes) <= v + 1e-6);
    }
}

#[test]
fn tracegen_density_contract() {
    let mut rng = StdRng::seed_from_u64(24);
    for _ in 0..32 {
        let density = rng.gen_range(0.05f64..0.6);
        let reuse = rng.gen_range(0.0f64..0.95);
        let g = TraceGen::new(TraceGenParams {
            bit_density: density,
            reuse,
            em_fraction: 0.3,
            extra_bits: 2.0,
            window: 32,
            max_chain: 6,
        });
        let m = g.generate(512, 64, &mut rng);
        assert!(
            (m.density() - density).abs() < 0.08,
            "target {} got {}",
            density,
            m.density()
        );
    }
}

#[test]
fn rate_code_empirical_density() {
    let mut rng = StdRng::seed_from_u64(5);
    let m = rate_code(&[0.25; 256], 16, || rng.gen());
    assert!((m.density() - 0.25).abs() < 0.03, "density {}", m.density());
}

#[test]
fn direct_code_is_deterministic() {
    let a = direct_code(&[0.7, 0.2, 1.4], 6, LifParams::default());
    let b = direct_code(&[0.7, 0.2, 1.4], 6, LifParams::default());
    assert_eq!(a, b);
}

#[test]
fn tracegen_reuse_creates_prefix_structure() {
    use prosperity::core::ProSparsityPlan;
    use prosperity::spikemat::TileShape;
    let mut rng = StdRng::seed_from_u64(9);
    let correlated = TraceGen::new(TraceGenParams {
        bit_density: 0.3,
        reuse: 0.8,
        em_fraction: 0.4,
        extra_bits: 2.0,
        window: 32,
        max_chain: 6,
    })
    .generate(512, 64, &mut rng);
    let random = TraceGen::new(TraceGenParams::uncorrelated(0.3)).generate(512, 64, &mut rng);
    let tile = TileShape::new(256, 16);
    let d_corr = ProSparsityPlan::build_tiled(&correlated, tile)
        .stats()
        .pro_density();
    let d_rand = ProSparsityPlan::build_tiled(&random, tile)
        .stats()
        .pro_density();
    assert!(
        d_corr < d_rand,
        "correlation must increase product sparsity: {d_corr} vs {d_rand}"
    );
}

//! Property tests on the substrates: im2col/convolution equivalence, LIF
//! dynamics, encoders, and the trace generator's statistical contracts.

use proptest::prelude::*;
use prosperity::models::{TraceGen, TraceGenParams};
use prosperity::neuron::encode::{direct_code, rate_code};
use prosperity::neuron::{FsNeuron, FsParams, LifNeuron, LifParams, ResetMode};
use prosperity::spikemat::gemm::WeightMatrix;
use prosperity::spikemat::im2col::{im2col_equals_direct, Conv2dParams, SpikeFeatureMap};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn im2col_equals_direct_convolution(
        c in 1usize..4,
        cout in 1usize..5,
        size in 3usize..9,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        bits in proptest::collection::vec(any::<bool>(), 0..200),
        wseed in any::<i32>(),
    ) {
        prop_assume!(size + 2 * padding >= kernel);
        let params = Conv2dParams::square(c, cout, size, kernel, stride, padding);
        let mut input = SpikeFeatureMap::zeros(c, size, size);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                let idx = i % (c * size * size);
                input.set(idx / (size * size), (idx / size) % size, idx % size, true);
            }
        }
        let k = c * kernel * kernel;
        let w = WeightMatrix::from_fn(k, cout, |r, col| {
            i64::from(wseed).wrapping_mul(17) + (r * cout + col) as i64 * 13 - 50
        });
        prop_assert!(im2col_equals_direct(&input, &w, &params));
    }

    #[test]
    fn lif_spikes_only_at_threshold(
        currents in proptest::collection::vec(-2.0f32..2.0, 1..50),
        threshold in 0.5f32..2.0,
        leak in 0.0f32..1.0,
    ) {
        let mut n = LifNeuron::new(LifParams {
            threshold,
            leak,
            reset: ResetMode::Hard(0.0),
        });
        for &c in &currents {
            let before = n.potential();
            let fired = n.step(c);
            let integrated = leak * before + c;
            prop_assert_eq!(fired, integrated >= threshold);
            if fired {
                prop_assert_eq!(n.potential(), 0.0);
            }
        }
    }

    #[test]
    fn fs_neuron_spike_cap_and_monotone_decode(
        v in 0.0f32..2.0,
        max_spikes in 1usize..5,
    ) {
        let n = FsNeuron::new(FsParams {
            window: 8,
            full_scale: 2.0,
            max_spikes,
        });
        let spikes = n.encode(v);
        prop_assert!(spikes.iter().map(|&s| s as usize).sum::<usize>() <= max_spikes);
        // Decoded value never exceeds the encoded one (greedy underestimates).
        prop_assert!(n.decode(&spikes) <= v + 1e-6);
    }

    #[test]
    fn tracegen_density_contract(
        density in 0.05f64..0.6,
        reuse in 0.0f64..0.95,
        seed in any::<u64>(),
    ) {
        let g = TraceGen::new(TraceGenParams {
            bit_density: density,
            reuse,
            em_fraction: 0.3,
            extra_bits: 2.0,
            window: 32,
            max_chain: 6,
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let m = g.generate(512, 64, &mut rng);
        prop_assert!((m.density() - density).abs() < 0.08,
            "target {} got {}", density, m.density());
    }
}

#[test]
fn rate_code_empirical_density() {
    let mut rng = StdRng::seed_from_u64(5);
    use rand::Rng;
    let m = rate_code(&[0.25; 256], 16, || rng.gen());
    assert!((m.density() - 0.25).abs() < 0.03, "density {}", m.density());
}

#[test]
fn direct_code_is_deterministic() {
    let a = direct_code(&[0.7, 0.2, 1.4], 6, LifParams::default());
    let b = direct_code(&[0.7, 0.2, 1.4], 6, LifParams::default());
    assert_eq!(a, b);
}

#[test]
fn tracegen_reuse_creates_prefix_structure() {
    use prosperity::core::ProSparsityPlan;
    use prosperity::spikemat::TileShape;
    let mut rng = StdRng::seed_from_u64(9);
    let correlated = TraceGen::new(TraceGenParams {
        bit_density: 0.3,
        reuse: 0.8,
        em_fraction: 0.4,
        extra_bits: 2.0,
        window: 32,
        max_chain: 6,
    })
    .generate(512, 64, &mut rng);
    let random = TraceGen::new(TraceGenParams::uncorrelated(0.3)).generate(512, 64, &mut rng);
    let tile = TileShape::new(256, 16);
    let d_corr = ProSparsityPlan::build_tiled(&correlated, tile).stats().pro_density();
    let d_rand = ProSparsityPlan::build_tiled(&random, tile).stats().pro_density();
    assert!(
        d_corr < d_rand,
        "correlation must increase product sparsity: {d_corr} vs {d_rand}"
    );
}

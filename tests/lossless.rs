//! The paper's central correctness claim: ProSparsity is algorithm-agnostic
//! and **lossless**. Property-tested across seeded random matrices, tilings
//! (including ragged edge tiles), and calibrated model traces, for both the
//! serial and the parallel kernels.

use prosperity::core::exec::{execute_plan, execute_plan_serial, prosparsity_gemm};
use prosperity::core::ProSparsityPlan;
use prosperity::models::{Architecture, Dataset, Workload};
use prosperity::spikemat::gemm::{spiking_gemm, WeightMatrix};
use prosperity::spikemat::{SpikeMatrix, TileShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_spikes(rng: &mut StdRng, max_m: usize, max_k: usize) -> SpikeMatrix {
    let m = rng.gen_range(1..=max_m);
    let k = rng.gen_range(1..=max_k);
    let density = rng.gen_range(0.0..0.8);
    SpikeMatrix::random(m, k, density, rng)
}

#[test]
fn prosparsity_gemm_is_lossless() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for trial in 0..64 {
        let spikes = random_spikes(&mut rng, 32, 24);
        let k = spikes.cols();
        let n = rng.gen_range(1..6);
        let tile_m = rng.gen_range(1..33);
        let tile_k = rng.gen_range(1..25);
        let seed: i64 = rng.gen_range(-1_000_000..1_000_000);
        let w = WeightMatrix::from_fn(k, n, |r, c| {
            (seed
                .wrapping_mul(31)
                .wrapping_add((r * n + c) as i64 * 7919))
                % 1000
        });
        let got = prosparsity_gemm(&spikes, &w, TileShape::new(tile_m, tile_k));
        let expect = spiking_gemm(&spikes, &w);
        assert_eq!(got, expect, "trial {trial} tile {tile_m}x{tile_k}");
    }
}

#[test]
fn parallel_equals_serial_equals_reference() {
    // The satellite contract: parallel execute_plan == serial == spiking_gemm
    // across tilings, including ragged-edge tiles (tile dims that do not
    // divide the matrix dims).
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for trial in 0..40 {
        let spikes = random_spikes(&mut rng, 48, 40);
        let k = spikes.cols();
        let n = rng.gen_range(1..8);
        let w = WeightMatrix::from_fn(k, n, |r, c| (r * 31 + c * 7) as i64 % 211 - 105);
        let reference = spiking_gemm(&spikes, &w);
        // One dividing tiling and one deliberately ragged tiling per trial.
        let shapes = [
            TileShape::new(rng.gen_range(1..=spikes.rows()), rng.gen_range(1..=k)),
            TileShape::new(spikes.rows().max(2) - 1, k.max(3).div_ceil(2)),
        ];
        for shape in shapes {
            let plan = ProSparsityPlan::build_tiled(&spikes, shape);
            let par = execute_plan(&plan, &w);
            let ser = execute_plan_serial(&plan, &w);
            assert_eq!(par, ser, "trial {trial} shape {shape:?}");
            assert_eq!(par, reference, "trial {trial} shape {shape:?}");
        }
    }
}

#[test]
fn ragged_edge_tiles_are_lossless_exhaustively() {
    // A fixed awkward size swept over every tile shape in range, so every
    // combination of full and ragged row/column edge tiles is exercised.
    let mut rng = StdRng::seed_from_u64(7);
    let spikes = SpikeMatrix::random(13, 11, 0.35, &mut rng);
    let w = WeightMatrix::from_fn(11, 3, |r, c| (r * 3 + c) as i64 - 16);
    let reference = spiking_gemm(&spikes, &w);
    for tile_m in 1..=14 {
        for tile_k in 1..=12 {
            let got = prosparsity_gemm(&spikes, &w, TileShape::new(tile_m, tile_k));
            assert_eq!(got, reference, "tile {tile_m}x{tile_k}");
        }
    }
}

#[test]
fn plan_reuse_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xD0E);
    for _ in 0..20 {
        let spikes = random_spikes(&mut rng, 24, 16);
        let k = spikes.cols();
        let n = rng.gen_range(1..4);
        let w = WeightMatrix::from_fn(k, n, |r, c| (r as i64 + 1) * (c as i64 + 3));
        let plan = ProSparsityPlan::build_tiled(&spikes, TileShape::new(8, 8));
        let a = execute_plan(&plan, &w);
        let b = execute_plan(&plan, &w);
        assert_eq!(&a, &b);
        assert_eq!(a, spiking_gemm(&spikes, &w));
    }
}

#[test]
fn pro_ops_never_exceed_bit_ops() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..64 {
        let spikes = random_spikes(&mut rng, 48, 32);
        let tile_m = rng.gen_range(1..49);
        let tile_k = rng.gen_range(1..33);
        let plan = ProSparsityPlan::build_tiled(&spikes, TileShape::new(tile_m, tile_k));
        let s = plan.stats();
        assert!(s.pro_ops <= s.bit_ops);
        assert!(s.bit_ops <= s.dense_ops);
        assert_eq!(s.bit_ops, spikes.total_spikes() as u64);
    }
}

#[test]
fn calibrated_model_traces_are_lossless() {
    // A small real workload end to end: every layer's plan replays exactly.
    let w = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.42, 0.1, 77);
    let trace = w.generate_trace(0.25);
    let tile = TileShape::prosperity_default();
    for layer in &trace.layers {
        let k = layer.spikes.cols();
        let n = layer.spec.shape.n.min(8); // keep the check fast
        let weights = WeightMatrix::from_fn(k, n, |r, c| ((r * 13 + c * 7) % 251) as i64 - 125);
        assert_eq!(
            prosparsity_gemm(&layer.spikes, &weights, tile),
            spiking_gemm(&layer.spikes, &weights),
            "layer {} must be lossless",
            layer.spec.name
        );
    }
}

#[test]
fn exact_match_rows_share_results_globally() {
    // Duplicate rows anywhere in the same tile must produce equal outputs.
    let rows: Vec<&[u8]> = vec![
        &[1, 0, 1, 1, 0, 0],
        &[0, 1, 0, 0, 1, 1],
        &[1, 0, 1, 1, 0, 0], // dup of row 0
        &[0, 1, 0, 0, 1, 1], // dup of row 1
    ];
    let s = SpikeMatrix::from_rows_of_bits(&rows);
    let w = WeightMatrix::from_fn(6, 3, |r, c| (r * 3 + c) as i32);
    let out = prosparsity_gemm(&s, &w, TileShape::new(4, 6));
    assert_eq!(out.row(0), out.row(2));
    assert_eq!(out.row(1), out.row(3));
}

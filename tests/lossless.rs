//! The paper's central correctness claim: ProSparsity is algorithm-agnostic
//! and **lossless**. Property-tested across random matrices, tilings, and
//! calibrated model traces.

use proptest::prelude::*;
use prosperity::core::exec::{execute_plan, prosparsity_gemm};
use prosperity::core::ProSparsityPlan;
use prosperity::models::{Architecture, Dataset, Workload};
use prosperity::spikemat::gemm::{spiking_gemm, WeightMatrix};
use prosperity::spikemat::{SpikeMatrix, TileShape};

fn arb_spike_matrix(max_m: usize, max_k: usize) -> impl Strategy<Value = SpikeMatrix> {
    (1..=max_m, 1..=max_k).prop_flat_map(|(m, k)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), k), m).prop_map(
            move |rows| {
                let bytes: Vec<Vec<u8>> = rows
                    .iter()
                    .map(|r| r.iter().map(|&b| u8::from(b)).collect())
                    .collect();
                SpikeMatrix::from_rows_of_bits(
                    &bytes.iter().map(|r| r.as_slice()).collect::<Vec<_>>(),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prosparsity_gemm_is_lossless(
        spikes in arb_spike_matrix(32, 24),
        n in 1usize..6,
        tile_m in 1usize..33,
        tile_k in 1usize..25,
        seed in any::<i64>(),
    ) {
        let k = spikes.cols();
        let w = WeightMatrix::from_fn(k, n, |r, c| {
            (seed.wrapping_mul(31).wrapping_add((r * n + c) as i64 * 7919)) % 1000
        });
        let got = prosparsity_gemm(&spikes, &w, TileShape::new(tile_m, tile_k));
        let expect = spiking_gemm(&spikes, &w);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn plan_reuse_is_deterministic(
        spikes in arb_spike_matrix(24, 16),
        n in 1usize..4,
    ) {
        let k = spikes.cols();
        let w = WeightMatrix::from_fn(k, n, |r, c| (r as i64 + 1) * (c as i64 + 3));
        let plan = ProSparsityPlan::build_tiled(&spikes, TileShape::new(8, 8));
        let a = execute_plan(&plan, &w);
        let b = execute_plan(&plan, &w);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a, spiking_gemm(&spikes, &w));
    }

    #[test]
    fn pro_ops_never_exceed_bit_ops(
        spikes in arb_spike_matrix(48, 32),
        tile_m in 1usize..49,
        tile_k in 1usize..33,
    ) {
        let plan = ProSparsityPlan::build_tiled(&spikes, TileShape::new(tile_m, tile_k));
        let s = plan.stats();
        prop_assert!(s.pro_ops <= s.bit_ops);
        prop_assert!(s.bit_ops <= s.dense_ops);
        prop_assert_eq!(s.bit_ops, spikes.total_spikes() as u64);
    }
}

#[test]
fn calibrated_model_traces_are_lossless() {
    // A small real workload end to end: every layer's plan replays exactly.
    let w = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.42, 0.1, 77);
    let trace = w.generate_trace(0.25);
    let tile = TileShape::prosperity_default();
    for layer in &trace.layers {
        let k = layer.spikes.cols();
        let n = layer.spec.shape.n.min(8); // keep the check fast
        let weights = WeightMatrix::from_fn(k, n, |r, c| ((r * 13 + c * 7) % 251) as i64 - 125);
        assert_eq!(
            prosparsity_gemm(&layer.spikes, &weights, tile),
            spiking_gemm(&layer.spikes, &weights),
            "layer {} must be lossless",
            layer.spec.name
        );
    }
}

#[test]
fn exact_match_rows_share_results_globally() {
    // Duplicate rows anywhere in the same tile must produce equal outputs.
    let rows: Vec<&[u8]> = vec![
        &[1, 0, 1, 1, 0, 0],
        &[0, 1, 0, 0, 1, 1],
        &[1, 0, 1, 1, 0, 0], // dup of row 0
        &[0, 1, 0, 0, 1, 1], // dup of row 1
    ];
    let s = SpikeMatrix::from_rows_of_bits(&rows);
    let w = WeightMatrix::from_fn(6, 3, |r, c| (r * 3 + c) as i32);
    let out = prosparsity_gemm(&s, &w, TileShape::new(4, 6));
    assert_eq!(out.row(0), out.row(2));
    assert_eq!(out.row(1), out.row(3));
}

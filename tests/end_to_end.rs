//! End-to-end reproduction sanity: the headline relationships of the paper's
//! evaluation must hold on freshly generated calibrated traces.

use prosperity::baselines::a100::A100;
use prosperity::baselines::eyeriss::Eyeriss;
use prosperity::baselines::loas::{evaluate, table5_models};
use prosperity::baselines::mint::Mint;
use prosperity::baselines::ptb::Ptb;
use prosperity::baselines::sato::Sato;
use prosperity::baselines::stellar::{fs_density, Stellar};
use prosperity::core::ProSparsityPlan;
use prosperity::models::Workload;
use prosperity::sim::{simulate_model, EnergyModel, ProsperityConfig};
use prosperity::spikemat::TileShape;

/// VGG-16/CIFAR-100 at small scale: the Table I relationships.
#[test]
fn table1_relationships_hold() {
    let w = Workload::vgg16_cifar100();
    let trace = w.generate_trace(0.12);
    let config = ProsperityConfig::default();
    let perf = simulate_model(&trace, &config);

    // Densities: product far below bit, bit in the calibrated band.
    let bit = perf.stats.bit_density();
    let pro = perf.stats.pro_density();
    assert!((bit - 0.3421).abs() < 0.05, "bit density {bit}");
    assert!(pro < 0.08, "product density {pro}");
    assert!(bit / pro > 4.0, "reduction {}", bit / pro);

    // Speedups: Prosperity > PTB > dense.
    let dense = Eyeriss::default().simulate(&trace);
    let ptb = Ptb::default().simulate(&trace);
    let mine = perf.time_seconds();
    assert!(ptb.time_s < dense.time_s);
    assert!(mine < ptb.time_s);
    let speedup = dense.time_s / mine;
    assert!(
        speedup > 8.0 && speedup < 30.0,
        "dense speedup {speedup} out of the paper's band (17.55x)"
    );
}

/// Fig. 8 ordering on one CNN and one transformer workload.
#[test]
fn fig8_ordering_holds() {
    for w in [&Workload::fig8_suite()[2], &Workload::fig8_suite()[13]] {
        let trace = w.generate_trace(0.12);
        let config = ProsperityConfig::default();
        let perf = simulate_model(&trace, &config);
        let energy = EnergyModel::default().energy(&perf.events);

        let eyeriss = Eyeriss::default().simulate(&trace);
        let ptb = Ptb::default().simulate(&trace);
        let sato = Sato::default().simulate(&trace);
        let mint = Mint::default().simulate(&trace);
        let a100 = A100::default().simulate(&trace);

        // Prosperity is the fastest accelerator on every workload.
        for other in [&eyeriss, &ptb, &sato, &mint, &a100] {
            assert!(
                perf.time_seconds() < other.time_s,
                "{}: Prosperity must beat {}",
                w.name(),
                other.name
            );
        }
        // And by far the most energy-efficient vs the GPU.
        assert!(
            a100.energy_j / energy.total() > 20.0,
            "{}: A100 energy gap too small",
            w.name()
        );
        // Stellar supports CNNs only.
        assert_eq!(
            Stellar::default().simulate(&trace).is_some(),
            !w.arch.is_transformer()
        );
    }
}

/// Fig. 11: bit > FS > product for every evaluated density regime.
#[test]
fn fig11_density_ordering() {
    for w in Workload::fig11_suite().iter().step_by(4) {
        let trace = w.generate_trace(0.1);
        let mut bit = 0u64;
        let mut pro = 0u64;
        let mut dense = 0u64;
        for l in &trace.layers {
            let plan = ProSparsityPlan::build_tiled(&l.spikes, TileShape::prosperity_default());
            bit += plan.stats().bit_ops;
            pro += plan.stats().pro_ops;
            dense += plan.stats().dense_ops;
        }
        let bit_d = bit as f64 / dense as f64;
        let pro_d = pro as f64 / dense as f64;
        let fs_d = fs_density(bit_d, 4, 2);
        assert!(pro_d < fs_d, "{}: product {pro_d} !< FS {fs_d}", w.name());
        assert!(fs_d < bit_d, "{}: FS {fs_d} !< bit {bit_d}", w.name());
    }
}

/// Table V: ProSparsity composes with LoAS weight pruning.
#[test]
fn table5_ratios_hold() {
    let mut model = table5_models()[1]; // VGG-16
    model.layer_m = 512;
    model.layer_k = 512;
    let r = evaluate(&model, 1234);
    assert!(r.ratio() > 2.0, "reduction {}", r.ratio());
    assert!(
        (r.weight_density - 0.018).abs() < 1e-12,
        "pruning untouched"
    );
}

/// Sec. VII-G: the measured ΔS of calibrated workloads clears the 4.4 %
/// break-even threshold.
#[test]
fn cost_model_break_even_cleared() {
    use prosperity::sim::cost_model::CostInputs;
    let w = Workload::vgg16_cifar100();
    let trace = w.generate_trace(0.1);
    let mut bit = 0u64;
    let mut pro = 0u64;
    let mut dense = 0u64;
    for l in &trace.layers {
        let plan = ProSparsityPlan::build_tiled(&l.spikes, TileShape::prosperity_default());
        bit += plan.stats().bit_ops;
        pro += plan.stats().pro_ops;
        dense += plan.stats().dense_ops;
    }
    let delta_s = (bit - pro) as f64 / dense as f64;
    let inputs = CostInputs {
        delta_s,
        ..CostInputs::paper_default()
    };
    assert!(delta_s > inputs.break_even_delta_s(), "dS {delta_s}");
    assert!(inputs.benefit_cost_ratio() > 1.0);
}

//! Cross-crate invariants of the cycle-accurate simulator and energy model,
//! property-tested over seeded random matrices.

use prosperity::core::ProSparsityPlan;
use prosperity::models::{Architecture, Dataset, Workload};
use prosperity::sim::ppu::simulate_layer;
use prosperity::sim::{simulate_model, EnergyModel, ProsperityConfig, SimMode};
use prosperity::spikemat::{SpikeMatrix, TileShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rng: &mut StdRng) -> SpikeMatrix {
    let m = rng.gen_range(1..64);
    let k = rng.gen_range(1..40);
    let density = rng.gen_range(0.0..0.8);
    SpikeMatrix::random(m, k, density, rng)
}

fn cfg(mode: SimMode, m: usize, k: usize) -> ProsperityConfig {
    ProsperityConfig {
        tile: TileShape::new(m, k),
        mode,
        ..ProsperityConfig::default()
    }
}

#[test]
fn full_mode_never_does_more_pe_work() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..48 {
        let spikes = random_matrix(&mut rng);
        let n = rng.gen_range(1..200);
        let full = simulate_layer(&spikes, n, &cfg(SimMode::Full, 16, 8));
        let bit = simulate_layer(&spikes, n, &cfg(SimMode::BitSparsityOnly, 16, 8));
        assert!(full.events.pe_accumulations <= bit.events.pe_accumulations);
        assert_eq!(
            bit.events.pe_accumulations,
            spikes.total_spikes() as u64 * n as u64
        );
    }
}

#[test]
fn slow_dispatch_is_never_faster_than_full() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..48 {
        let spikes = random_matrix(&mut rng);
        let full = simulate_layer(&spikes, 32, &cfg(SimMode::Full, 16, 8));
        let slow = simulate_layer(&spikes, 32, &cfg(SimMode::ProSparsitySlowDispatch, 16, 8));
        assert!(slow.compute_cycles >= full.compute_cycles);
        assert_eq!(slow.events.pe_accumulations, full.events.pe_accumulations);
    }
}

#[test]
fn compute_cycles_lower_bound() {
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..48 {
        let spikes = random_matrix(&mut rng);
        // Every valid row costs at least one issue slot per k-tile pass.
        let c = cfg(SimMode::Full, 16, 8);
        let perf = simulate_layer(&spikes, 64, &c);
        let k_tiles = spikes.cols().div_ceil(8) as u64;
        assert!(perf.compute_cycles >= spikes.rows() as u64 * k_tiles);
        assert!(perf.cycles >= perf.compute_cycles.min(perf.dram_cycles));
        assert_eq!(perf.cycles, perf.compute_cycles.max(perf.dram_cycles));
    }
}

#[test]
fn sim_stats_agree_with_plan() {
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..48 {
        let spikes = random_matrix(&mut rng);
        let c = cfg(SimMode::Full, 16, 8);
        let perf = simulate_layer(&spikes, 16, &c);
        let plan = ProSparsityPlan::build_tiled(&spikes, TileShape::new(16, 8));
        assert_eq!(perf.stats.pro_ops, plan.stats().pro_ops);
        assert_eq!(perf.stats.bit_ops, plan.stats().bit_ops);
        assert_eq!(perf.stats.rows, plan.stats().rows);
    }
}

#[test]
fn energy_is_monotone_in_events() {
    let mut rng = StdRng::seed_from_u64(15);
    for _ in 0..48 {
        let spikes = random_matrix(&mut rng);
        let c = cfg(SimMode::Full, 16, 8);
        let small = simulate_layer(&spikes, 16, &c);
        let big = simulate_layer(&spikes, 64, &c);
        let model = EnergyModel::default();
        let es = model.energy(&small.events);
        let eb = model.energy(&big.events);
        // Wider output ⇒ at least as much processor and DRAM energy.
        assert!(eb.processor >= es.processor);
        assert!(eb.dram >= es.dram);
        assert!(eb.total() >= es.total() - 1e-18);
    }
}

#[test]
fn ablation_ladder_is_ordered_on_a_real_workload() {
    let trace =
        Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.45, 0.1, 11).generate_trace(0.25);
    let full = simulate_model(&trace, &ProsperityConfig::default());
    let slow = simulate_model(
        &trace,
        &ProsperityConfig::with_mode(SimMode::ProSparsitySlowDispatch),
    );
    let bit = simulate_model(
        &trace,
        &ProsperityConfig::with_mode(SimMode::BitSparsityOnly),
    );
    assert!(full.cycles <= slow.cycles, "fast dispatch must not lose");
    assert!(full.cycles <= bit.cycles, "ProSparsity must not lose");
    assert!(full.stats.pro_ops < bit.stats.pro_ops);
}

#[test]
fn energy_breakdown_components_sum_to_total() {
    let trace =
        Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 12).generate_trace(0.25);
    let perf = simulate_model(&trace, &ProsperityConfig::default());
    let e = EnergyModel::default().energy(&perf.events);
    let sum = e.detector + e.pruner + e.dispatcher + e.processor + e.buffer + e.other + e.dram;
    assert!((e.total() - sum).abs() < 1e-15);
    assert!(e.total() > 0.0);
    assert!(e.dram > 0.0);
}

#[test]
fn tile_size_one_degenerates_to_bit_sparsity() {
    // m = 1: no prefixes possible, Full mode must equal BitSparsityOnly ops.
    let trace =
        Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 13).generate_trace(0.1);
    let full = simulate_model(&trace, &ProsperityConfig::with_tile(1, 16));
    assert_eq!(full.stats.pro_ops, full.stats.bit_ops);
    assert_eq!(full.stats.root_rows, full.stats.rows);
}

//! Cross-crate invariants of the cycle-accurate simulator and energy model.

use proptest::prelude::*;
use prosperity::core::ProSparsityPlan;
use prosperity::models::{Architecture, Dataset, Workload};
use prosperity::sim::ppu::simulate_layer;
use prosperity::sim::{simulate_model, EnergyModel, ProsperityConfig, SimMode};
use prosperity::spikemat::{SpikeMatrix, TileShape};

fn arb_matrix() -> impl Strategy<Value = SpikeMatrix> {
    (1usize..64, 1usize..40).prop_flat_map(|(m, k)| {
        proptest::collection::vec(proptest::collection::vec(0u8..2, k), m).prop_map(|rows| {
            SpikeMatrix::from_rows_of_bits(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>())
        })
    })
}

fn cfg(mode: SimMode, m: usize, k: usize) -> ProsperityConfig {
    ProsperityConfig {
        tile: TileShape::new(m, k),
        mode,
        ..ProsperityConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_mode_never_does_more_pe_work(spikes in arb_matrix(), n in 1usize..200) {
        let full = simulate_layer(&spikes, n, &cfg(SimMode::Full, 16, 8));
        let bit = simulate_layer(&spikes, n, &cfg(SimMode::BitSparsityOnly, 16, 8));
        prop_assert!(full.events.pe_accumulations <= bit.events.pe_accumulations);
        prop_assert_eq!(
            bit.events.pe_accumulations,
            spikes.total_spikes() as u64 * n as u64
        );
    }

    #[test]
    fn slow_dispatch_is_never_faster_than_full(spikes in arb_matrix()) {
        let full = simulate_layer(&spikes, 32, &cfg(SimMode::Full, 16, 8));
        let slow = simulate_layer(&spikes, 32, &cfg(SimMode::ProSparsitySlowDispatch, 16, 8));
        prop_assert!(slow.compute_cycles >= full.compute_cycles);
        prop_assert_eq!(slow.events.pe_accumulations, full.events.pe_accumulations);
    }

    #[test]
    fn compute_cycles_lower_bound(spikes in arb_matrix()) {
        // Every valid row costs at least one issue slot per k-tile pass.
        let c = cfg(SimMode::Full, 16, 8);
        let perf = simulate_layer(&spikes, 64, &c);
        let k_tiles = spikes.cols().div_ceil(8) as u64;
        prop_assert!(perf.compute_cycles >= spikes.rows() as u64 * k_tiles);
        prop_assert!(perf.cycles >= perf.compute_cycles.min(perf.dram_cycles));
        prop_assert_eq!(perf.cycles, perf.compute_cycles.max(perf.dram_cycles));
    }

    #[test]
    fn sim_stats_agree_with_plan(spikes in arb_matrix()) {
        let c = cfg(SimMode::Full, 16, 8);
        let perf = simulate_layer(&spikes, 16, &c);
        let plan = ProSparsityPlan::build_tiled(&spikes, TileShape::new(16, 8));
        prop_assert_eq!(perf.stats.pro_ops, plan.stats().pro_ops);
        prop_assert_eq!(perf.stats.bit_ops, plan.stats().bit_ops);
        prop_assert_eq!(perf.stats.rows, plan.stats().rows);
    }

    #[test]
    fn energy_is_monotone_in_events(spikes in arb_matrix()) {
        let c = cfg(SimMode::Full, 16, 8);
        let small = simulate_layer(&spikes, 16, &c);
        let big = simulate_layer(&spikes, 64, &c);
        let model = EnergyModel::default();
        let es = model.energy(&small.events);
        let eb = model.energy(&big.events);
        // Wider output ⇒ at least as much processor and DRAM energy.
        prop_assert!(eb.processor >= es.processor);
        prop_assert!(eb.dram >= es.dram);
        prop_assert!(eb.total() >= es.total() - 1e-18);
    }
}

#[test]
fn ablation_ladder_is_ordered_on_a_real_workload() {
    let trace = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.45, 0.1, 11)
        .generate_trace(0.25);
    let full = simulate_model(&trace, &ProsperityConfig::default());
    let slow = simulate_model(
        &trace,
        &ProsperityConfig::with_mode(SimMode::ProSparsitySlowDispatch),
    );
    let bit = simulate_model(&trace, &ProsperityConfig::with_mode(SimMode::BitSparsityOnly));
    assert!(full.cycles <= slow.cycles, "fast dispatch must not lose");
    assert!(full.cycles <= bit.cycles, "ProSparsity must not lose");
    assert!(full.stats.pro_ops < bit.stats.pro_ops);
}

#[test]
fn energy_breakdown_components_sum_to_total() {
    let trace = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 12)
        .generate_trace(0.25);
    let perf = simulate_model(&trace, &ProsperityConfig::default());
    let e = EnergyModel::default().energy(&perf.events);
    let sum =
        e.detector + e.pruner + e.dispatcher + e.processor + e.buffer + e.other + e.dram;
    assert!((e.total() - sum).abs() < 1e-15);
    assert!(e.total() > 0.0);
    assert!(e.dram > 0.0);
}

#[test]
fn tile_size_one_degenerates_to_bit_sparsity() {
    // m = 1: no prefixes possible, Full mode must equal BitSparsityOnly ops.
    let trace = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 13)
        .generate_trace(0.1);
    let full = simulate_model(&trace, &ProsperityConfig::with_tile(1, 16));
    assert_eq!(full.stats.pro_ops, full.stats.bit_ops);
    assert_eq!(full.stats.root_rows, full.stats.rows);
}

//! Steady-state allocation regression harness.
//!
//! A counting `#[global_allocator]` wraps the system allocator; once the
//! serving hot path is warm (plan cache populated, output/scratch/encode
//! buffers at working-set capacity), repeated GeMM steps and snapshot
//! encodes must perform **zero** heap allocations. Any allocation smuggled
//! back into the hot loops fails this test with an exact count.
//!
//! One `#[test]` function only: the counter is process-global, so a second
//! concurrently running test would pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use prosperity::core::engine::{Engine, EngineConfig};
use prosperity::spikemat::gemm::{OutputMatrix, WeightMatrix};
use prosperity::spikemat::{SpikeMatrix, TileShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts allocations (alloc, alloc_zeroed, realloc) while armed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

// SAFETY: pure pass-through to `System`; the wrapper adds only atomic
// counter updates and upholds `GlobalAlloc`'s contract by delegation.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System::alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: delegates to `System::alloc_zeroed` with the caller's layout.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    // SAFETY: delegates to `System::realloc`; ptr/layout come from `alloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: delegates to `System::dealloc`; ptr/layout come from `alloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter armed, returning the allocations it made.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_serving_hot_path_is_allocation_free() {
    // --- GeMM steady state (serial path: the parallel path hands work to
    // rayon, whose queueing inherently allocates; the serial kernel is the
    // per-step cost model the paper's executor maps to).
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let config = EngineConfig::new(TileShape::new(64, 64), 256);
    let mut engine = Engine::<i64>::new(config);
    let weights = WeightMatrix::from_fn(192, 32, |r, c| (r * 7 + c) as i64 - 100);
    // A small rotation of inputs, all planned and cached during warmup, so
    // steady-state steps alternate tiles while hitting the cache.
    let inputs: Vec<SpikeMatrix> = (0..4)
        .map(|_| SpikeMatrix::random(128, 192, 0.2, &mut rng))
        .collect();
    let mut out = OutputMatrix::zeros(0, 0);
    for s in &inputs {
        engine.gemm_into_serial(s, &weights, &mut out); // plan + size buffers
        engine.gemm_into_serial(s, &weights, &mut out); // warm the pools
    }
    // The counted loop below ends on the last input of the rotation.
    let reference = engine.gemm(inputs.last().unwrap(), &weights);

    let gemm_allocs = count_allocs(|| {
        for _ in 0..8 {
            for s in &inputs {
                engine.gemm_into_serial(s, &weights, &mut out);
            }
        }
    });
    assert_eq!(
        gemm_allocs, 0,
        "steady-state serial GeMM steps must not allocate"
    );
    assert_eq!(
        out.as_slice(),
        reference.as_slice(),
        "hot path stayed correct while counted"
    );

    // --- Snapshot encode steady state: `encode_into` reuses the caller's
    // buffer, so a warm buffer encodes the working set allocation-free.
    let snapshot = engine.export_snapshot(256);
    assert!(!snapshot.is_empty(), "warmup must leave cached plans");
    let mut buf = bytes::BytesMut::new();
    snapshot.encode_into(&mut buf); // warm the buffer to image size
    let reference_image = buf.to_vec();
    let encode_allocs = count_allocs(|| {
        for _ in 0..8 {
            snapshot.encode_into(&mut buf);
        }
    });
    assert_eq!(encode_allocs, 0, "warm snapshot encode must not allocate");
    assert_eq!(
        &buf[..],
        &reference_image[..],
        "encode stayed bit-identical"
    );
}

//! Serving-runtime correctness: N sessions sharing one sharded plan cache
//! — interleaved by the batch scheduler or running on real threads — must
//! produce outputs bit-identical to each session run serially with a
//! private cache, across ragged tilings, eviction-pressure-sized caches,
//! and adaptive-admission bypass decisions. Plans are pure functions of
//! tile content, so sharing may only ever change *who* plans a tile.

use prosperity::core::engine::{
    AdmissionConfig, BatchPolicy, BatchScheduler, Engine, EngineConfig, EngineStats, PlanSnapshot,
    ServiceConfig, ServingLoop, Session, SharedPlanCache, TraceStep,
};
use prosperity::models::tracegen::{TraceGen, TraceGenParams};
use prosperity::models::Workload;
use prosperity::spikemat::gemm::{OutputMatrix, WeightMatrix};
use prosperity::spikemat::TileShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A multi-tenant batch: per tenant, a timestep stream and its own weights
/// (plan sharing is keyed on spikes only, so weights may differ freely).
struct TenantBatch {
    streams: Vec<Vec<prosperity::spikemat::SpikeMatrix>>,
    weights: Vec<WeightMatrix<i64>>,
}

fn random_batch(rng: &mut StdRng) -> TenantBatch {
    let tenants = rng.gen_range(2..=4);
    let steps = rng.gen_range(2..=4);
    let rows = rng.gen_range(20..70);
    let k = rng.gen_range(10..50);
    let n = rng.gen_range(1..6);
    let gen = TraceGen::new(TraceGenParams::uncorrelated(rng.gen_range(0.1..0.5)));
    let streams = gen.generate_tenant_streams(tenants, steps, rows, k, 0.9, 0.9, rng);
    let weights = (0..tenants)
        .map(|_| WeightMatrix::from_fn(k, n, |_, _| rng.gen_range(-30i64..30)))
        .collect();
    TenantBatch { streams, weights }
}

/// The oracle: each tenant alone through a serial private-cache session.
fn serial_private_oracle(batch: &TenantBatch, config: EngineConfig) -> Vec<Vec<OutputMatrix<i64>>> {
    batch
        .streams
        .iter()
        .zip(&batch.weights)
        .map(|(stream, w)| {
            let mut engine = Engine::new(config);
            let mut outs = Vec::with_capacity(stream.len());
            for spikes in stream {
                let mut out = OutputMatrix::zeros(0, 0);
                engine.gemm_into_serial(spikes, w, &mut out);
                outs.push(out);
            }
            outs
        })
        .collect()
}

fn traces_of(batch: &TenantBatch) -> Vec<Vec<TraceStep<'_, i64>>> {
    batch
        .streams
        .iter()
        .zip(&batch.weights)
        .map(|(stream, w)| stream.iter().map(|s| (s, w)).collect())
        .collect()
}

/// Acceptance property: shared-cache sessions interleaved by the batch
/// scheduler (both policies) are bit-identical to the serial private-cache
/// oracle, across ragged tilings and eviction-pressure-sized caches.
#[test]
fn scheduled_shared_sessions_match_serial_private_oracle() {
    let mut rng = StdRng::seed_from_u64(0x5EB1);
    for trial in 0..10 {
        let batch = random_batch(&mut rng);
        let tile = TileShape::new(rng.gen_range(1..=20), rng.gen_range(1..=20));
        // Tiny capacities put every shard under constant eviction pressure.
        let config = EngineConfig::new(tile, rng.gen_range(1..32));
        let oracle = serial_private_oracle(&batch, config);
        let traces = traces_of(&batch);
        let policies = [
            BatchPolicy::RoundRobin,
            BatchPolicy::CacheAffinity,
            BatchPolicy::Weighted {
                weights: (0..batch.streams.len())
                    .map(|_| rng.gen_range(1..5))
                    .collect(),
            },
            BatchPolicy::Deadline {
                budgets: (0..batch.streams.len())
                    .map(|_| rng.gen_range(1..200))
                    .collect(),
            },
        ];
        for policy in policies {
            let mut sched = BatchScheduler::new(config, policy.clone());
            let mut executed = 0usize;
            sched.run(&traces, |tenant, step, out| {
                assert_eq!(
                    out, &oracle[tenant][step],
                    "trial {trial} {policy:?} tenant {tenant} step {step}"
                );
                executed += 1;
            });
            assert_eq!(executed, oracle.iter().map(Vec::len).sum::<usize>());
            // Scheduler-level stats must account for every tile exactly.
            let merged = sched.merged_stats();
            assert_eq!(merged.cache_hits + merged.cache_misses, merged.tiles);
            let cs = sched.shared_cache().stats();
            assert_eq!(cs.hits, merged.cache_hits, "trial {trial} {policy:?}");
            assert_eq!(cs.misses, merged.cache_misses);
            // Single-threaded scheduling cannot race: every miss was either
            // inserted or bypassed by admission (none configured here).
            assert_eq!(cs.insertions, cs.misses);
            assert_eq!(cs.bypasses, 0);
            // Every lane settles a credit balance, whatever the policy
            // (non-Weighted policies settle all-zero balances).
            let ss = sched.scheduler_stats();
            assert_eq!(ss.credit_balances.len(), traces.len(), "{policy:?}");
            if !matches!(policy, BatchPolicy::Weighted { .. }) {
                assert!(ss.credit_balances.iter().all(|&c| c == 0), "{policy:?}");
            }
        }
    }
}

/// Tile-granular preemption property: dispatching in sub-GeMM slice quanta
/// must be bit-identical to the serial private-cache oracle for every
/// policy and every quantum, across ragged tilings. Row-tiles are
/// independent, so slicing a GeMM across scheduler visits may change only
/// *when* row-tiles execute, never what they produce — and the row-tile
/// accounting must come out identical whatever the quantum.
#[test]
fn sliced_scheduling_matches_serial_private_oracle_across_quanta() {
    let mut rng = StdRng::seed_from_u64(0x51CE);
    for trial in 0..8 {
        let batch = random_batch(&mut rng);
        let tile = TileShape::new(rng.gen_range(1..=20), rng.gen_range(1..=20));
        let config = EngineConfig::new(tile, rng.gen_range(1..32));
        let oracle = serial_private_oracle(&batch, config);
        let traces = traces_of(&batch);
        let policies = [
            BatchPolicy::RoundRobin,
            BatchPolicy::CacheAffinity,
            BatchPolicy::Weighted {
                weights: (0..batch.streams.len())
                    .map(|_| rng.gen_range(1..5))
                    .collect(),
            },
            BatchPolicy::Deadline {
                budgets: (0..batch.streams.len())
                    .map(|_| rng.gen_range(1..200))
                    .collect(),
            },
        ];
        for policy in policies {
            let mut row_tiles_by_quantum = Vec::new();
            for quantum in [1usize, 3, 0] {
                let mut sched =
                    BatchScheduler::new(config, policy.clone()).with_slice_quantum(quantum);
                let mut executed = 0usize;
                sched.run(&traces, |tenant, step, out| {
                    assert_eq!(
                        out, &oracle[tenant][step],
                        "trial {trial} {policy:?} quantum {quantum} tenant {tenant} step {step}"
                    );
                    executed += 1;
                });
                assert_eq!(executed, oracle.iter().map(Vec::len).sum::<usize>());
                let stats = sched.scheduler_stats();
                assert_eq!(
                    stats.lane_steps,
                    batch
                        .streams
                        .iter()
                        .map(|s| s.len() as u64)
                        .collect::<Vec<_>>(),
                    "trial {trial} {policy:?} quantum {quantum}: a sliced GeMM counts once"
                );
                row_tiles_by_quantum.push(stats.lane_row_tiles.clone());
                let merged = sched.merged_stats();
                assert_eq!(merged.cache_hits + merged.cache_misses, merged.tiles);
            }
            // Same per-lane row-tile totals under every quantum (identical
            // units, so QoS share ratios stay auditable across modes).
            assert_eq!(row_tiles_by_quantum[0], row_tiles_by_quantum[1]);
            assert_eq!(row_tiles_by_quantum[0], row_tiles_by_quantum[2]);
            assert!(row_tiles_by_quantum[0].iter().all(|&t| t > 0));
        }
    }
}

/// Session-level slicing: driving `gemm_slice` by hand — with a different
/// random bound every visit, including 0 = "the rest" — matches
/// `gemm_into_serial`, for both the parallel and serial slice entry
/// points; the cursor state machine reports in-flight correctly and
/// `reset_slice` abandons a partial GeMM cleanly.
#[test]
fn session_gemm_slice_matches_serial_across_mixed_quanta() {
    let mut rng = StdRng::seed_from_u64(0x717E);
    for trial in 0..12 {
        let batch = random_batch(&mut rng);
        let tile = TileShape::new(rng.gen_range(1..=20), rng.gen_range(1..=20));
        let config = EngineConfig::new(tile, 64);
        let oracle = serial_private_oracle(&batch, config);
        let serial_slices = trial % 2 == 0;
        let mut engine = Engine::new(config);
        for (tenant, (stream, w)) in batch.streams.iter().zip(&batch.weights).enumerate() {
            for (step, spikes) in stream.iter().enumerate() {
                let mut out = OutputMatrix::zeros(0, 0);
                let mut visits = 0usize;
                loop {
                    let max = if rng.gen_bool(0.2) {
                        0 // finish the GeMM in one go
                    } else {
                        rng.gen_range(1..=3)
                    };
                    let run = if serial_slices {
                        engine.gemm_slice_serial(spikes, w, &mut out, max)
                    } else {
                        engine.gemm_slice(spikes, w, &mut out, max)
                    };
                    visits += 1;
                    if run.done {
                        assert!(!engine.slice_in_flight());
                        break;
                    }
                    assert!(engine.slice_in_flight());
                    assert!(visits < 10_000, "cursor must make progress");
                }
                assert_eq!(
                    out, oracle[tenant][step],
                    "trial {trial} tenant {tenant} step {step} serial={serial_slices}"
                );
            }
        }
        // Abandoning a partial GeMM with reset_slice leaves the session
        // ready to plan fresh work with exact results.
        let spikes = &batch.streams[0][0];
        let w = &batch.weights[0];
        let mut out = OutputMatrix::zeros(0, 0);
        let run = engine.gemm_slice(spikes, w, &mut out, 1);
        if !run.done {
            engine.reset_slice();
        }
        assert!(!engine.slice_in_flight());
        engine.gemm_into(spikes, w, &mut out);
        assert_eq!(out, oracle[0][0], "trial {trial} after reset_slice");
    }
}

/// The same property on real threads: one session per tenant, all planning
/// through one shared cache concurrently.
#[test]
fn concurrent_shared_sessions_match_serial_private_oracle() {
    use std::sync::Mutex;
    let mut rng = StdRng::seed_from_u64(0xC0CC);
    for trial in 0..6 {
        let batch = random_batch(&mut rng);
        let tile = TileShape::new(rng.gen_range(1..=16), rng.gen_range(1..=16));
        let config = EngineConfig::new(tile, rng.gen_range(1..24));
        let oracle = serial_private_oracle(&batch, config);
        let traces = traces_of(&batch);
        let mut sched = BatchScheduler::new(config, BatchPolicy::RoundRobin);
        let got: Mutex<Vec<Vec<Option<OutputMatrix<i64>>>>> =
            Mutex::new(oracle.iter().map(|outs| vec![None; outs.len()]).collect());
        sched.run_concurrent(&traces, |tenant, step, out| {
            got.lock().unwrap()[tenant][step] = Some(out.clone());
        });
        let got = got.into_inner().unwrap();
        for (tenant, outs) in oracle.iter().enumerate() {
            for (step, want) in outs.iter().enumerate() {
                assert_eq!(
                    got[tenant][step].as_ref(),
                    Some(want),
                    "trial {trial} tenant {tenant} step {step}"
                );
            }
        }
        // However the threads raced, lookups balance: every tile either hit
        // or missed, and shard counters saw exactly the sessions' traffic.
        let merged = sched.merged_stats();
        assert_eq!(merged.cache_hits + merged.cache_misses, merged.tiles);
        let cs = sched.shared_cache().stats();
        assert_eq!(cs.hits + cs.misses, merged.tiles);
    }
}

/// Bare shared sessions (no scheduler): a session can join an already-warm
/// cache mid-flight and stays exact; the late joiner plans strictly less.
#[test]
fn late_joining_session_reuses_warm_cache_exactly() {
    let mut rng = StdRng::seed_from_u64(0x1A7E);
    let batch = random_batch(&mut rng);
    let tile = TileShape::new(8, 8);
    let config = EngineConfig::new(tile, 512);
    let oracle = serial_private_oracle(&batch, config);
    let shared = Arc::new(SharedPlanCache::with_shards(512, 4, None));
    let mut first = Session::with_shared(config, Arc::clone(&shared));
    let mut out = OutputMatrix::zeros(0, 0);
    for (step, spikes) in batch.streams[0].iter().enumerate() {
        first.gemm_into(spikes, &batch.weights[0], &mut out);
        assert_eq!(out, oracle[0][step]);
    }
    // Tenant 1 is 90 % correlated with tenant 0: most of its plans are
    // already resident, and its outputs are still exactly the oracle's.
    let mut late = Session::with_shared(config, Arc::clone(&shared));
    for (step, spikes) in batch.streams[1].iter().enumerate() {
        late.gemm_into(spikes, &batch.weights[1], &mut out);
        assert_eq!(out, oracle[1][step]);
    }
    assert!(
        late.stats().cache_misses < first.stats().cache_misses,
        "late joiner should plan less: {:?} vs {:?}",
        late.stats(),
        first.stats()
    );
}

/// Multi-tenant fig8-style model traces through the scheduler: the
/// workload-layer batch helpers compose with the runtime and stay exact.
#[test]
fn tenant_model_traces_serve_exactly() {
    let workload = Workload::spikingbert_sst2();
    let tenants = workload.generate_tenant_traces(0.02, 3, 0.3);
    let weights: Vec<Vec<WeightMatrix<i64>>> = tenants
        .iter()
        .map(|t| t.layers.iter().map(|l| l.synthetic_weights(7)).collect())
        .collect();
    let traces: Vec<Vec<TraceStep<'_, i64>>> = tenants
        .iter()
        .zip(&weights)
        .map(|(t, ws)| {
            t.layers
                .iter()
                .zip(ws)
                .map(|(l, w)| (&l.spikes, w))
                .collect()
        })
        .collect();
    let tile = TileShape::prosperity_default();
    let config = EngineConfig::new(tile, 1024);
    // Oracle: per-tenant serial private sessions.
    let oracle: Vec<Vec<OutputMatrix<i64>>> = traces
        .iter()
        .map(|trace| {
            let mut engine = Engine::new(config);
            trace
                .iter()
                .map(|&(s, w)| {
                    let mut out = OutputMatrix::zeros(0, 0);
                    engine.gemm_into_serial(s, w, &mut out);
                    out
                })
                .collect()
        })
        .collect();
    let mut sched = BatchScheduler::new(config, BatchPolicy::CacheAffinity);
    sched.run(&traces, |tenant, step, out| {
        assert_eq!(out, &oracle[tenant][step], "tenant {tenant} step {step}");
    });
    let merged = sched.merged_stats();
    assert_eq!(
        merged.gemms as usize,
        traces.iter().map(Vec::len).sum::<usize>()
    );
}

/// Adaptive admission on an uncorrelated stream: results stay exact while
/// insertions are bypassed, and a correlated stream keeps its hits.
#[test]
fn admission_bypass_is_lossless_and_reversible() {
    let mut rng = StdRng::seed_from_u64(0xADA1);
    let tile = TileShape::new(16, 16);
    let admission = AdmissionConfig {
        window: 64,
        min_hit_permille: 50,
        probe_period: 8,
    };
    let config = EngineConfig::new(tile, 256).with_admission(admission);
    let oracle_config = EngineConfig::new(tile, 256);
    let mut engine = Engine::new(config);
    let mut oracle = Engine::new(oracle_config);
    let mut out = OutputMatrix::zeros(0, 0);
    let mut want = OutputMatrix::zeros(0, 0);
    // Phase 1: uncorrelated — every matrix distinct.
    for _ in 0..6 {
        let s = prosperity::spikemat::SpikeMatrix::random(64, 48, 0.4, &mut rng);
        let w = WeightMatrix::from_fn(48, 4, |r, c| (r * 3 + c) as i64 - 20);
        engine.gemm_into(&s, &w, &mut out);
        oracle.gemm_into_serial(&s, &w, &mut want);
        assert_eq!(out, want);
    }
    assert!(
        engine.stats().cache_bypasses > 0,
        "uncorrelated stream should bypass: {:?}",
        engine.stats()
    );
    // Phase 2: a correlated stream (repeats) keeps hitting despite the
    // earlier bypass phase — probes re-seed the cache.
    let s = prosperity::spikemat::SpikeMatrix::random(64, 48, 0.4, &mut rng);
    let w = WeightMatrix::from_fn(48, 4, |r, c| (r + c) as i64);
    let before = engine.stats().cache_hits;
    for _ in 0..20 {
        engine.gemm_into(&s, &w, &mut out);
        oracle.gemm_into_serial(&s, &w, &mut want);
        assert_eq!(out, want);
    }
    assert!(
        engine.stats().cache_hits > before,
        "correlated phase should recover hits: {:?}",
        engine.stats()
    );
}

/// Snapshot warm-start property: encode → decode → import reproduces the
/// exporting cache exactly. A warm-started session serves the same outputs
/// as the original *and* as a cold session, but its first pass over the
/// trace hits on restored plans instead of re-planning.
#[test]
fn snapshot_restored_sessions_serve_identically_but_warmer() {
    let mut rng = StdRng::seed_from_u64(0x5A9D);
    for trial in 0..8 {
        let tile = TileShape::new(rng.gen_range(2..=16), rng.gen_range(2..=16));
        let config = EngineConfig::new(tile, rng.gen_range(16..512));
        let steps = rng.gen_range(2..=4);
        let rows = rng.gen_range(20..60);
        let k = rng.gen_range(10..40);
        let gen = TraceGen::new(TraceGenParams::uncorrelated(rng.gen_range(0.1..0.5)));
        let stream = &gen.generate_tenant_streams(1, steps, rows, k, 0.95, 1.0, &mut rng)[0];
        let w = WeightMatrix::from_fn(k, 3, |r, c| (r * 7 + c) as i64 - 9);

        // Process 1: serve cold, then snapshot at "shutdown".
        let mut original = Engine::new(config);
        let mut out = OutputMatrix::zeros(0, 0);
        let mut want = Vec::new();
        for s in stream {
            original.gemm_into(s, &w, &mut out);
            want.push(out.clone());
        }
        let snapshot = original.export_snapshot(config.cache_capacity);
        let resident = original.cached_plans();
        assert_eq!(snapshot.len(), resident, "trial {trial}");

        // The snapshot survives its binary format bit-for-bit: a restored
        // cache re-exports the identical byte stream.
        let bytes = snapshot.encode();
        let decoded = PlanSnapshot::decode(bytes.clone()).expect("decode");
        let (mut warm, report) = Session::warm_start(config, &decoded);
        assert_eq!(report.restored, resident, "trial {trial}: {report:?}");
        assert_eq!(warm.cached_plans(), resident);
        let re_encoded = warm.export_snapshot(config.cache_capacity).encode();
        assert_eq!(
            bytes.to_vec(),
            re_encoded.to_vec(),
            "trial {trial}: restored cache must re-export the identical snapshot"
        );

        // Process 2: the warm session's first pass serves from restored
        // plans; every output is still exactly the original's.
        for (step, s) in stream.iter().enumerate() {
            warm.gemm_into(s, &w, &mut out);
            assert_eq!(out, want[step], "trial {trial} step {step}");
        }
        let stats = warm.stats();
        assert_eq!(
            stats.cache_misses, 0,
            "trial {trial}: nothing the original planned may be re-planned"
        );
        assert_eq!(
            stats.restored_hits, stats.cache_hits,
            "trial {trial}: first-pass hits all come from the snapshot"
        );
    }
}

/// Warm-starting a whole scheduler fleet: the shared cache restored from a
/// previous fleet's snapshot starts at that fleet's steady-state hit rate.
#[test]
fn scheduler_warm_start_erases_cold_misses() {
    let mut rng = StdRng::seed_from_u64(0xF1EE);
    let batch = random_batch(&mut rng);
    let config = EngineConfig::new(TileShape::new(8, 8), 2048);
    let oracle = serial_private_oracle(&batch, config);
    let traces = traces_of(&batch);
    let mut fleet1 = BatchScheduler::new(config, BatchPolicy::RoundRobin);
    fleet1.run(&traces, |_, _, _| {});
    let cold_misses = fleet1.merged_stats().cache_misses;
    assert!(cold_misses > 0);
    let snapshot = fleet1.shared_cache().export_hottest(2048);

    let (mut fleet2, report) =
        BatchScheduler::warm_start(config, BatchPolicy::RoundRobin, &snapshot);
    assert_eq!(report.restored, snapshot.len());
    fleet2.run(&traces, |tenant, step, out| {
        assert_eq!(out, &oracle[tenant][step], "tenant {tenant} step {step}");
    });
    let warm = fleet2.merged_stats();
    assert_eq!(
        warm.cache_misses, 0,
        "the restored fleet replays entirely from the snapshot: {warm:?}"
    );
    assert!(warm.restored_hits > 0);
    let cache = fleet2.shared_cache().stats();
    assert_eq!(cache.restored_hits, warm.restored_hits);
    assert_eq!(cache.restored_resident, snapshot.len());
}

/// The ROADMAP-documented cross-tenant admission leak, as a regression
/// test: a correlated tenant and an uncorrelated tenant sharing one cache
/// get *independent* admission decisions — the cold tenant's insertions
/// close while the hot tenant's stay open, and both stay bit-exact.
#[test]
fn per_tenant_admission_isolates_hot_and_cold_tenants() {
    let mut rng = StdRng::seed_from_u64(0x7E4A);
    let tile = TileShape::new(16, 16);
    let admission = AdmissionConfig {
        window: 32,
        min_hit_permille: 100,
        probe_period: 0,
    };
    let config = EngineConfig::new(tile, 4096);
    let shared = Arc::new(SharedPlanCache::with_shards(4096, 8, Some(admission)));
    let mut hot = Session::with_shared_tenant(config, Arc::clone(&shared), 0);
    let mut cold = Session::with_shared_tenant(config, Arc::clone(&shared), 1);
    assert_eq!((hot.tenant(), cold.tenant()), (0, 1));
    let w = WeightMatrix::from_fn(48, 4, |r, c| (r * 3 + c) as i64 - 20);
    let mut out = OutputMatrix::zeros(0, 0);
    let mut want = OutputMatrix::zeros(0, 0);
    let mut oracle = Engine::new(config);
    // The hot tenant replays one matrix; the cold tenant never repeats.
    let hot_spikes = prosperity::spikemat::SpikeMatrix::random(64, 48, 0.4, &mut rng);
    for _ in 0..24 {
        hot.gemm_into(&hot_spikes, &w, &mut out);
        oracle.gemm_into_serial(&hot_spikes, &w, &mut want);
        assert_eq!(out, want);
        let cold_spikes = prosperity::spikemat::SpikeMatrix::random(64, 48, 0.4, &mut rng);
        cold.gemm_into(&cold_spikes, &w, &mut out);
        oracle.gemm_into_serial(&cold_spikes, &w, &mut want);
        assert_eq!(out, want);
    }
    // Independent decisions: the cold tenant's stream closed its own
    // admission window, while the hot tenant (a ~100 % hit stream sharing
    // the same shards) never bypassed anything.
    assert!(
        cold.stats().cache_bypasses > 0,
        "cold tenant must be bypassed despite the hot tenant's hits: {:?}",
        cold.stats()
    );
    assert_eq!(
        hot.stats().cache_bypasses,
        0,
        "hot tenant must not inherit the cold tenant's closed window: {:?}",
        hot.stats()
    );
    assert!(hot.stats().cache_hits > 0);
    assert_eq!(shared.stats().tenants, 2);
}

/// The lane-reuse leak, as a regression test: without `begin_batch`, a
/// second `run` with a *different* trace set inherits the previous traces'
/// admission windows under the same lane ids — run A's closed window gates
/// run B's insertions. `begin_batch` must hand run B fresh tenants whose
/// windows start open.
#[test]
fn begin_batch_stops_run_a_admission_from_gating_run_b() {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let tile = TileShape::new(16, 16);
    // No probes: once a window closes it stays closed — the sharpest
    // version of the leak.
    let admission = AdmissionConfig {
        window: 32,
        min_hit_permille: 100,
        probe_period: 0,
    };
    let config = EngineConfig::new(tile, 4096).with_admission(admission);
    let w = WeightMatrix::from_fn(48, 4, |r, c| (r * 3 + c) as i64 - 20);

    // Run A: an uncorrelated tenant (every matrix distinct) closes its
    // admission window on lane 0.
    let cold_stream: Vec<prosperity::spikemat::SpikeMatrix> = (0..40)
        .map(|_| prosperity::spikemat::SpikeMatrix::random(64, 48, 0.4, &mut rng))
        .collect();
    let run_a: Vec<Vec<TraceStep<'_, i64>>> = vec![cold_stream.iter().map(|s| (s, &w)).collect()];
    // Run B: a correlated tenant (one matrix replayed) on the same lane.
    let hot = prosperity::spikemat::SpikeMatrix::random(64, 48, 0.4, &mut rng);
    let run_b: Vec<Vec<TraceStep<'_, i64>>> = vec![vec![(&hot, &w); 12]];

    // Without begin_batch, run B inherits run A's closed window: its very
    // first (cold) tiles are bypassed and it can never warm up.
    let mut leaky = BatchScheduler::new(config, BatchPolicy::RoundRobin);
    leaky.run(&run_a, |_, _, _| {});
    assert!(leaky.merged_stats().cache_bypasses > 0, "run A must close");
    leaky.reset_stats();
    leaky.run(&run_b, |_, _, _| {});
    let inherited = leaky.merged_stats();
    assert!(
        inherited.cache_bypasses > 0,
        "without begin_batch run B is gated by run A's window: {inherited:?}"
    );

    // With begin_batch, run B gets a fresh tenant: its window starts open,
    // the first step inserts, and every later step hits.
    let mut clean = BatchScheduler::new(config, BatchPolicy::RoundRobin);
    clean.run(&run_a, |_, _, _| {});
    clean.begin_batch();
    clean.run(&run_b, |lane, step, out| {
        let mut oracle = Engine::new(EngineConfig::new(tile, 4096));
        let mut want = OutputMatrix::zeros(0, 0);
        oracle.gemm_into_serial(&hot, &w, &mut want);
        assert_eq!(out, &want, "lane {lane} step {step}");
    });
    let fresh = clean.merged_stats();
    assert_eq!(
        fresh.cache_bypasses, 0,
        "begin_batch must give run B an open window: {fresh:?}"
    );
    assert!(fresh.cache_hits > 0);

    // Explicit remap: run B can also pin run A's tenant back on purpose —
    // the remap path, not the leak, decides who inherits a window.
    let mut pinned = BatchScheduler::new(config, BatchPolicy::RoundRobin);
    pinned.run(&run_a, |_, _, _| {});
    pinned.begin_batch_as(&[0]);
    pinned.run(&run_b, |_, _, _| {});
    assert!(
        pinned.merged_stats().cache_bypasses > 0,
        "begin_batch_as(0) deliberately re-attaches run A's window"
    );
}

/// Background snapshot export racing in-flight planning: while the serving
/// loop executes lanes, export threads walk the shared cache shard by
/// shard. Every collected snapshot must encode → decode cleanly and import
/// into a fresh cache as verified entries that serve bit-exact outputs.
#[test]
fn background_export_races_planning_and_stays_decodable() {
    let mut rng = StdRng::seed_from_u64(0xBACE);
    for trial in 0..4 {
        let batch = random_batch(&mut rng);
        let tile = TileShape::new(rng.gen_range(4..=12), rng.gen_range(4..=12));
        let config = EngineConfig::new(tile, 512);
        let oracle = serial_private_oracle(&batch, config);
        let traces = traces_of(&batch);
        // Export every 2 executed steps so several exports overlap the run.
        let service = ServiceConfig::default().with_snapshots(2, 512);
        let mut serving = ServingLoop::new(config, BatchPolicy::RoundRobin, service);
        serving.run(&traces, |tenant, step, out| {
            assert_eq!(
                out, &oracle[tenant][step],
                "trial {trial} tenant {tenant} step {step}"
            );
        });
        let snapshots = serving.take_snapshots();
        assert!(!snapshots.is_empty(), "trial {trial}: cadence must fire");
        assert_eq!(
            serving.stats().snapshots_exported,
            snapshots.len() as u64,
            "trial {trial}"
        );
        for (i, snap) in snapshots.iter().enumerate() {
            // The full persistence path: encode → decode (checksums and
            // per-entry hashes verified) → import into a fresh cache.
            let decoded = PlanSnapshot::decode(snap.encode())
                .unwrap_or_else(|e| panic!("trial {trial} snapshot {i}: {e}"));
            assert_eq!(decoded.len(), snap.len());
            let restored = SharedPlanCache::new(512);
            let report = restored.import(&decoded, tile);
            assert_eq!(report.requested, decoded.len(), "trial {trial} snap {i}");
            assert_eq!(
                report.skipped_shape, 0,
                "exports carry only this tile shape"
            );
            assert_eq!(
                report.restored + report.skipped_capacity + report.skipped_duplicate,
                report.requested,
                "trial {trial} snap {i}: every entry accounted for"
            );
            assert_eq!(restored.len(), report.restored);
        }
        // The newest snapshot warm-starts a process that serves the same
        // batch bit-identically.
        let last = snapshots.last().unwrap();
        let (mut warm, _) = BatchScheduler::warm_start(config, BatchPolicy::RoundRobin, last);
        warm.run(&traces, |tenant, step, out| {
            assert_eq!(
                out, &oracle[tenant][step],
                "trial {trial} warm tenant {tenant} step {step}"
            );
        });
    }
}

/// Admission-table GC bounds the tenant registry under unbounded churn:
/// 1000 one-shot tenants stream through the serving loop, and the table
/// must stay within the GC's idle horizon instead of growing to 1000 —
/// while a returning tenant's window survives every sweep.
#[test]
fn admission_gc_bounds_the_table_under_tenant_churn() {
    let mut rng = StdRng::seed_from_u64(0x6C6C);
    let tile = TileShape::new(16, 16);
    let config = EngineConfig::new(tile, 2048).with_admission(AdmissionConfig::default());
    // One GC sweep per batch (each batch below runs 2 steps); windows may
    // sit idle for at most 2 sweeps.
    let service = ServiceConfig::default().with_gc(2, 2);
    let mut serving = ServingLoop::<i64>::new(config, BatchPolicy::RoundRobin, service);
    let w = WeightMatrix::from_fn(32, 3, |r, c| (r + c) as i64 - 4);
    let spikes = prosperity::spikemat::SpikeMatrix::random(32, 32, 0.3, &mut rng);
    let keeper = 5000u64; // returns in every batch
    let mut max_tenants = 0usize;
    for batch_no in 0..500u64 {
        // Two fresh tenants per batch + the keeper: 1000 distinct one-shot
        // ids over the run.
        let tenants = [keeper, 2 * batch_no, 2 * batch_no + 1];
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|_| vec![(&spikes, &w)]).collect();
        serving.run_batch_as(&tenants, &traces, |_, _, _| {});
        max_tenants = max_tenants.max(serving.shared_cache().stats().tenants);
    }
    let stats = serving.stats();
    assert!(
        stats.gc_evictions >= 900,
        "churned windows evicted: {stats:?}"
    );
    // Bound: the keeper + at most (idle horizon + 1) batches of 2 one-shot
    // tenants may be live at any instant — far below the 1000 minted.
    assert!(
        max_tenants <= 1 + 2 * 4,
        "table must stay bounded under churn, peaked at {max_tenants}"
    );
    let final_tenants = serving.shared_cache().stats().tenants;
    assert!(final_tenants <= 1 + 2 * 4, "final size {final_tenants}");
}

/// Stats merging is the audited sum of per-session counters.
#[test]
fn merged_stats_account_for_every_session() {
    let mut rng = StdRng::seed_from_u64(0x57A7);
    let batch = random_batch(&mut rng);
    let config = EngineConfig::new(TileShape::new(8, 8), 64);
    let traces = traces_of(&batch);
    let mut sched = BatchScheduler::new(config, BatchPolicy::RoundRobin);
    sched.run(&traces, |_, _, _| {});
    let per_session = sched.session_stats();
    assert_eq!(per_session.len(), batch.streams.len());
    let merged = sched.merged_stats();
    assert_eq!(merged, EngineStats::merged(per_session.iter()));
    let by_hand = per_session
        .iter()
        .fold(EngineStats::default(), |mut acc, s| {
            acc.merge(s);
            acc
        });
    assert_eq!(merged, by_hand);
    assert_eq!(
        merged.gemms as usize,
        batch.streams.iter().map(Vec::len).sum::<usize>()
    );
}

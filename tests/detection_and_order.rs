//! Property tests of the PPU front end: TCAM detection equivalence, pruning
//! invariants, forest structure, and temporal-order validity.

use proptest::prelude::*;
use prosperity::core::detect::{detect_tile, naive_subsets, TcamDetector};
use prosperity::core::order::{forest_walk_order, is_valid_order, sorted_order, BitonicSorter};
use prosperity::core::plan::TileMeta;
use prosperity::core::prune::prune_tile;
use prosperity::core::{MatchKind, ProSparsityForest};
use prosperity::spikemat::SpikeMatrix;

fn arb_tile(max_m: usize, max_k: usize) -> impl Strategy<Value = SpikeMatrix> {
    (1..=max_m, 1..=max_k).prop_flat_map(|(m, k)| {
        proptest::collection::vec(proptest::collection::vec(0u8..2, k), m).prop_map(|rows| {
            SpikeMatrix::from_rows_of_bits(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tcam_equals_naive_pairwise_search(tile in arb_tile(40, 24)) {
        prop_assert_eq!(detect_tile(&tile), naive_subsets(&tile));
    }

    #[test]
    fn tcam_match_vector_is_subset_semantics(tile in arb_tile(24, 16), q in 0usize..24) {
        let q = q % tile.rows();
        let tcam = TcamDetector::load(&tile);
        let si = tcam.query(tile.row(q));
        for (j, &matched) in si.iter().enumerate() {
            prop_assert_eq!(matched, tile.row(j).is_subset_of(tile.row(q)));
        }
    }

    #[test]
    fn pruner_invariants(tile in arb_tile(40, 20)) {
        let detected = detect_tile(&tile);
        let pruned = prune_tile(&tile, &detected);
        for (i, row) in pruned.iter().enumerate() {
            match row.prefix {
                Some(p) => {
                    // Prefix is a nonzero subset respecting the partial order.
                    prop_assert!(tile.row(p).is_subset_of(tile.row(i)));
                    prop_assert!(tile.row(p).popcount() > 0);
                    let (pp, pi) = (tile.row(p).popcount(), tile.row(i).popcount());
                    prop_assert!(pp < pi || (pp == pi && p < i));
                    // Pattern = set difference; kind consistent.
                    prop_assert_eq!(&row.pattern, &tile.row(i).xor(tile.row(p)));
                    match row.kind {
                        MatchKind::Exact => prop_assert!(row.pattern.is_zero()),
                        MatchKind::Partial => prop_assert!(!row.pattern.is_zero()),
                        MatchKind::None => prop_assert!(false, "prefix with kind None"),
                    }
                }
                None => {
                    prop_assert_eq!(row.kind, MatchKind::None);
                    prop_assert_eq!(&row.pattern, tile.row(i));
                }
            }
        }
    }

    #[test]
    fn forest_is_acyclic_and_orders_are_valid(tile in arb_tile(48, 16)) {
        let detected = detect_tile(&tile);
        let pruned = prune_tile(&tile, &detected);
        let forest = ProSparsityForest::from_pruned(&pruned);
        prop_assert!(forest.validate());
        prop_assert!(forest.max_depth() < forest.len().max(1));
        // Both dispatch strategies produce valid topological orders.
        prop_assert!(is_valid_order(&forest, &sorted_order(&detected.popcounts)));
        prop_assert!(is_valid_order(&forest, &forest_walk_order(&forest)));
    }

    #[test]
    fn bitonic_sorter_matches_stable_sort(pcs in proptest::collection::vec(0usize..32, 0..300)) {
        let (order, sorter) = BitonicSorter::sort(&pcs);
        prop_assert_eq!(order, sorted_order(&pcs));
        if pcs.len() > 1 {
            prop_assert!(sorter.stages() > 0);
        }
    }

    #[test]
    fn tile_meta_consistency(tile in arb_tile(32, 16)) {
        let meta = TileMeta::build(&tile, 0, 0);
        // Order is a permutation.
        let mut seen = vec![false; tile.rows()];
        for &r in &meta.order {
            prop_assert!(!seen[r]);
            seen[r] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // Stats bit ops equal actual spikes.
        let s = meta.stats(tile.total_spikes() as u64);
        prop_assert_eq!(s.rows as usize, tile.rows());
        prop_assert!(s.pro_ops <= s.bit_ops);
    }
}

#[test]
fn identical_rows_chain_by_index() {
    // All-equal tiles form a single EM chain 0 <- 1 <- 2 ... via the
    // largest-index tie-break, except row 0 (root).
    let row: &[u8] = &[1, 0, 1];
    let tile = SpikeMatrix::from_rows_of_bits(&[row; 5]);
    let pruned = prune_tile(&tile, &detect_tile(&tile));
    assert_eq!(pruned[0].prefix, None);
    #[allow(clippy::needless_range_loop)]
    for i in 1..5 {
        assert_eq!(pruned[i].prefix, Some(i - 1), "row {i}");
        assert_eq!(pruned[i].kind, MatchKind::Exact);
    }
}

//! Property tests of the PPU front end: TCAM detection equivalence (both the
//! staged and the scratch-reusing batched paths), pruning invariants, forest
//! structure, and temporal-order validity — over seeded random tiles.

use prosperity::core::detect::{detect_tile, detect_tile_into, naive_subsets, TcamDetector};
use prosperity::core::order::{forest_walk_order, is_valid_order, sorted_order, BitonicSorter};
use prosperity::core::plan::TileMeta;
use prosperity::core::prune::prune_tile;
use prosperity::core::{MatchKind, ProSparsityForest};
use prosperity::spikemat::SpikeMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tile(rng: &mut StdRng, max_m: usize, max_k: usize) -> SpikeMatrix {
    let m = rng.gen_range(1..=max_m);
    let k = rng.gen_range(1..=max_k);
    let density = rng.gen_range(0.0..0.8);
    SpikeMatrix::random(m, k, density, rng)
}

#[test]
fn tcam_equals_naive_pairwise_search() {
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..128 {
        let tile = random_tile(&mut rng, 40, 24);
        assert_eq!(detect_tile(&tile), naive_subsets(&tile), "trial {trial}");
    }
}

#[test]
fn batched_detect_with_reused_scratch_equals_naive() {
    // detect_tile_into must stay exact while its scratch buffers carry
    // arbitrary state from previous (differently sized) tiles.
    let mut rng = StdRng::seed_from_u64(2);
    let mut scratch = detect_tile(&SpikeMatrix::zeros(7, 9));
    for trial in 0..128 {
        let tile = random_tile(&mut rng, 40, 24);
        detect_tile_into(&tile, &mut scratch);
        assert_eq!(scratch, naive_subsets(&tile), "trial {trial}");
    }
}

#[test]
fn tcam_match_vector_is_subset_semantics() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut si = Vec::new();
    for _ in 0..64 {
        let tile = random_tile(&mut rng, 24, 16);
        let q = rng.gen_range(0..tile.rows());
        let tcam = TcamDetector::load(&tile);
        tcam.query_into(tile.row(q), &mut si);
        assert_eq!(si, tcam.query(tile.row(q)));
        for (j, &matched) in si.iter().enumerate() {
            assert_eq!(matched, tile.row(j).is_subset_of(tile.row(q)));
        }
    }
}

#[test]
fn pruner_invariants() {
    let mut rng = StdRng::seed_from_u64(4);
    for trial in 0..128 {
        let tile = random_tile(&mut rng, 40, 20);
        let detected = detect_tile(&tile);
        let pruned = prune_tile(&tile, &detected);
        for (i, row) in pruned.iter().enumerate() {
            match row.prefix {
                Some(p) => {
                    // Prefix is a nonzero subset respecting the partial order.
                    assert!(tile.row(p).is_subset_of(tile.row(i)));
                    assert!(tile.row(p).popcount() > 0);
                    let (pp, pi) = (tile.row(p).popcount(), tile.row(i).popcount());
                    assert!(pp < pi || (pp == pi && p < i));
                    // Pattern = set difference; kind consistent.
                    assert_eq!(&row.pattern, &tile.row(i).xor(tile.row(p)));
                    match row.kind {
                        MatchKind::Exact => assert!(row.pattern.is_zero()),
                        MatchKind::Partial => assert!(!row.pattern.is_zero()),
                        MatchKind::None => panic!("prefix with kind None (trial {trial})"),
                    }
                }
                None => {
                    assert_eq!(row.kind, MatchKind::None);
                    assert_eq!(&row.pattern, tile.row(i));
                }
            }
        }
    }
}

#[test]
fn fused_tile_meta_matches_staged_pipeline() {
    // TileMeta::build fuses Detector + Pruner with an early-exit argmax scan;
    // it must select exactly the staged pipeline's prefixes and patterns.
    let mut rng = StdRng::seed_from_u64(5);
    for trial in 0..128 {
        let tile = random_tile(&mut rng, 40, 20);
        let meta = TileMeta::build(&tile, 0, 0);
        let pruned = prune_tile(&tile, &detect_tile(&tile));
        for (i, (got, want)) in meta.rows.iter().zip(&pruned).enumerate() {
            assert_eq!(got.prefix, want.prefix, "trial {trial} row {i}");
            assert_eq!(got.kind, want.kind, "trial {trial} row {i}");
            assert_eq!(got.pattern, want.pattern, "trial {trial} row {i}");
        }
    }
}

#[test]
fn forest_is_acyclic_and_orders_are_valid() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..128 {
        let tile = random_tile(&mut rng, 48, 16);
        let detected = detect_tile(&tile);
        let pruned = prune_tile(&tile, &detected);
        let forest = ProSparsityForest::from_pruned(&pruned);
        assert!(forest.validate());
        assert!(forest.max_depth() < forest.len().max(1));
        // Both dispatch strategies produce valid topological orders.
        assert!(is_valid_order(&forest, &sorted_order(&detected.popcounts)));
        assert!(is_valid_order(&forest, &forest_walk_order(&forest)));
    }
}

#[test]
fn bitonic_sorter_matches_stable_sort() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..128 {
        let len = rng.gen_range(0..300);
        let pcs: Vec<usize> = (0..len).map(|_| rng.gen_range(0..32)).collect();
        let (order, sorter) = BitonicSorter::sort(&pcs);
        assert_eq!(order, sorted_order(&pcs));
        if pcs.len() > 1 {
            assert!(sorter.stages() > 0);
        }
    }
}

#[test]
fn tile_meta_consistency() {
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..64 {
        let tile = random_tile(&mut rng, 32, 16);
        let meta = TileMeta::build(&tile, 0, 0);
        // Order is a permutation.
        let mut seen = vec![false; tile.rows()];
        for &r in &meta.order {
            assert!(!seen[r]);
            seen[r] = true;
        }
        assert!(seen.into_iter().all(|s| s));
        // Stats bit ops equal actual spikes.
        let s = meta.stats(tile.total_spikes() as u64);
        assert_eq!(s.rows as usize, tile.rows());
        assert!(s.pro_ops <= s.bit_ops);
    }
}

#[test]
fn identical_rows_chain_by_index() {
    // All-equal tiles form a single EM chain 0 <- 1 <- 2 ... via the
    // largest-index tie-break, except row 0 (root).
    let row: &[u8] = &[1, 0, 1];
    let tile = SpikeMatrix::from_rows_of_bits(&[row; 5]);
    let pruned = prune_tile(&tile, &detect_tile(&tile));
    assert_eq!(pruned[0].prefix, None);
    #[allow(clippy::needless_range_loop)]
    for i in 1..5 {
        assert_eq!(pruned[i].prefix, Some(i - 1), "row {i}");
        assert_eq!(pruned[i].kind, MatchKind::Exact);
    }
}

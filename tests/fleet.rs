//! Fleet-mode acceptance suite: consistent-hash placement, snapshot
//! gossip, and the multi-process store layout.
//!
//! Three layers, strongest guarantee first:
//!
//! 1. **Placement** — [`Ring`] properties over seeded random fleets:
//!    placement is a pure function of membership (join order free), a
//!    join only pulls tenants *onto* the new node, a leave only moves the
//!    leaver's own tenants, and either event moves about
//!    `tenants / nodes` of them, never a reshuffle.
//! 2. **Gossip** — the in-process [`FleetHarness`]: a node joining a warm
//!    fleet adopts peers' plans on its bootstrap sweep, and its outputs
//!    are bit-identical to both the serial private-cache oracle and a
//!    cold loop that never gossiped. Warmth moves; results cannot.
//! 3. **Processes** — a real multi-process smoke test: fleet members as
//!    separate OS processes (this test binary re-exec'd) sharing a store
//!    directory layout, the joiner process provably warmed by the donor
//!    process's snapshot.

use prosperity::core::engine::{
    BatchPolicy, Engine, EngineConfig, FleetHarness, Ring, ServiceConfig, ServingLoop,
    SnapshotStore, TraceStep,
};
use prosperity::models::tracegen::{TraceGen, TraceGenParams};
use prosperity::spikemat::gemm::{OutputMatrix, WeightMatrix};
use prosperity::spikemat::{SpikeMatrix, TileShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fleet root removed on drop, unique per test and process.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("prosperity_fleet_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// ---------------------------------------------------------------- ring --

#[test]
fn ring_placement_is_stable_across_join_orders() {
    let mut rng = StdRng::seed_from_u64(0x41B6);
    for _ in 0..16 {
        let n = rng.gen_range(2..10usize);
        let mut ids: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        ids.sort_unstable();
        ids.dedup();
        let forward = Ring::with_nodes(&ids);
        let mut shuffled = ids.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }
        let backward = Ring::with_nodes(&shuffled);
        assert_eq!(forward, backward, "membership alone decides the ring");
        for _ in 0..200 {
            let tenant: u64 = rng.gen();
            let owner = forward.place(tenant).expect("non-empty ring");
            assert!(forward.contains(owner));
            assert_eq!(forward.place(tenant), Some(owner), "placement is stable");
        }
    }
}

/// Join/leave churn, structurally and by count. Structurally: a tenant
/// whose placement changed on a join must have landed on the joiner; on a
/// leave, only the leaver's tenants move. By count: either event moves
/// about `tenants / nodes` tenants — bounded here by
/// `⌈tenants / nodes⌉ + slack` with slack covering vnode variance.
#[test]
fn ring_join_and_leave_move_a_bounded_sliver_of_tenants() {
    let mut rng = StdRng::seed_from_u64(0xC4A2);
    let tenants: Vec<u64> = (0..600u64).map(|t| t.wrapping_mul(0x9E37_79B9)).collect();
    for round in 0..12 {
        let n = rng.gen_range(2..8usize);
        let mut ids: Vec<u64> = (0..n as u64).map(|i| i * 7 + round).collect();
        let mut ring = Ring::with_nodes(&ids);
        let before: Vec<u64> = tenants.iter().map(|&t| ring.place(t).unwrap()).collect();

        // Join: the only tenants allowed to move are the newcomer's.
        let newcomer = 0xF00D + round;
        assert!(ring.join(newcomer));
        let mut moved = 0usize;
        for (i, &t) in tenants.iter().enumerate() {
            let now = ring.place(t).unwrap();
            if now != before[i] {
                assert_eq!(
                    now, newcomer,
                    "round {round}: churn must land on the joiner"
                );
                moved += 1;
            }
        }
        let bound = tenants.len().div_ceil(ring.len()) + tenants.len() / 8;
        assert!(
            moved <= bound,
            "round {round}: join moved {moved} > bound {bound}"
        );

        // Leave (a veteran, not the newcomer): only its tenants move.
        let leaver = ids.swap_remove(rng.gen_range(0..ids.len()));
        let owned: Vec<u64> = tenants.iter().map(|&t| ring.place(t).unwrap()).collect();
        assert!(ring.leave(leaver));
        let mut moved = 0usize;
        for (i, &t) in tenants.iter().enumerate() {
            let now = ring.place(t).unwrap();
            if owned[i] == leaver {
                assert_ne!(now, leaver, "round {round}");
                moved += 1;
            } else {
                assert_eq!(now, owned[i], "round {round}: survivors keep their tenants");
            }
        }
        let bound = tenants.len().div_ceil(ring.len() + 1) + tenants.len() / 8;
        assert!(
            moved <= bound,
            "round {round}: leave moved {moved} > bound {bound}"
        );
    }
}

// -------------------------------------------------- in-process gossip --

/// Highly-correlated tenant streams: the fleet's whole point is that one
/// tenant's hot tiles are warm currency for its peers.
fn fleet_streams(
    seed: u64,
    tenants: usize,
    steps: usize,
) -> (Vec<Vec<SpikeMatrix>>, WeightMatrix<i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = TraceGen::new(TraceGenParams::uncorrelated(0.30));
    let streams = gen.generate_tenant_streams(tenants, steps, 48, 32, 0.999, 0.9995, &mut rng);
    let weights = WeightMatrix::from_fn(32, 4, |r, c| (r * 5 + c) as i64 - 11);
    (streams, weights)
}

fn serial_oracle(
    stream: &[SpikeMatrix],
    weights: &WeightMatrix<i64>,
    config: EngineConfig,
) -> Vec<OutputMatrix<i64>> {
    let mut engine = Engine::new(config);
    stream
        .iter()
        .map(|spikes| {
            let mut out = OutputMatrix::zeros(0, 0);
            engine.gemm_into_serial(spikes, weights, &mut out);
            out
        })
        .collect()
}

fn run_collect(
    serving: &mut ServingLoop<i64>,
    stream: &[SpikeMatrix],
    weights: &WeightMatrix<i64>,
) -> Vec<OutputMatrix<i64>> {
    let traces: Vec<Vec<TraceStep<'_, i64>>> = vec![stream.iter().map(|s| (s, weights)).collect()];
    let mut outs: Vec<Option<OutputMatrix<i64>>> = vec![None; stream.len()];
    serving.run(&traces, |_, step, out| outs[step] = Some(out.clone()));
    outs.into_iter()
        .map(|o| o.expect("every step served"))
        .collect()
}

/// The tentpole property: gossip-warmed execution is **bit-identical** to
/// cold execution. For seeded random fleets, a joiner that bootstraps from
/// warm peers adopts their plans (counters prove it) yet produces exactly
/// the outputs of (a) the serial private-cache oracle and (b) a cold loop
/// that never gossiped — then keeps doing so across membership churn.
#[test]
fn gossip_warmed_node_is_bit_identical_to_cold_execution() {
    let dir = TempDir::new("bitident");
    for seed in 0..6u64 {
        let root = dir.0.join(format!("seed{seed}"));
        let (streams, weights) = fleet_streams(0xF1EE7 + seed, 3, 6);
        let tile = TileShape::new(8, 8);
        let config = EngineConfig::new(tile, 512);
        let service = ServiceConfig::default().with_gossip(1, Vec::new());
        let mut fleet: FleetHarness<i64> =
            FleetHarness::new(&root, config, BatchPolicy::RoundRobin, service);

        // Two veterans serve their tenants and export their hot plans.
        fleet.join(0).expect("join 0");
        fleet.join(1).expect("join 1");
        for id in [0u64, 1] {
            let stream = &streams[id as usize];
            let oracle = serial_oracle(stream, &weights, config);
            let outs = run_collect(fleet.node_mut(id).unwrap(), stream, &weights);
            assert_eq!(outs, oracle, "seed {seed} veteran {id}");
            fleet.export_now(id, 512).expect("export");
        }

        // The joiner gossip-bootstraps from both veterans before step 0.
        fleet.join(2).expect("join 2");
        let joiner_stream = &streams[2];
        let oracle = serial_oracle(joiner_stream, &weights, config);
        let warm_outs = run_collect(fleet.node_mut(2).unwrap(), joiner_stream, &weights);
        let warm = fleet.node(2).unwrap().stats();
        assert!(warm.gossip_imports >= 2, "seed {seed}: {warm:?}");
        assert!(warm.gossip_plans_adopted > 0, "seed {seed}: {warm:?}");
        assert_eq!(warm_outs, oracle, "seed {seed}: gossip-warmed vs oracle");

        // The cold control: same stream, no fleet, no gossip.
        let mut cold =
            ServingLoop::<i64>::new(config, BatchPolicy::RoundRobin, ServiceConfig::default());
        let cold_outs = run_collect(&mut cold, joiner_stream, &weights);
        assert_eq!(
            warm_outs, cold_outs,
            "seed {seed}: warmth moved, results did not"
        );

        // Membership churn mid-life: a veteran leaves, the joiner keeps
        // serving bit-exactly against the shrunken peer set.
        let retired = fleet.leave(0).expect("leave 0");
        assert!(retired.stats().lane_faults == 0);
        let again = run_collect(fleet.node_mut(2).unwrap(), joiner_stream, &weights);
        assert_eq!(again, oracle, "seed {seed}: post-churn replay");
        assert_eq!(fleet.nodes(), &[1, 2]);
    }
}

/// The harness keeps every node's peer list glued to the ring: joins wire
/// both directions, leaves un-wire, and the shared on-disk layout is the
/// documented `node-<id>` convention.
#[test]
fn harness_membership_keeps_peers_and_layout_in_sync() {
    let dir = TempDir::new("membership");
    let config = EngineConfig::new(TileShape::new(8, 8), 128);
    let service = ServiceConfig::default().with_gossip(2, Vec::new());
    let mut fleet: FleetHarness<i64> =
        FleetHarness::new(&dir.0, config, BatchPolicy::RoundRobin, service);
    for id in [3u64, 1, 2] {
        assert!(fleet.join(id).expect("join"));
    }
    assert!(!fleet.join(2).expect("re-join"), "idempotent");
    assert_eq!(fleet.nodes(), &[1, 2, 3]);
    for id in [1u64, 2, 3] {
        assert!(FleetHarness::<i64>::store_dir(&dir.0, id).is_dir());
        let peers = &fleet.node(id).unwrap().service_config().gossip_peers;
        assert_eq!(peers.len(), 2, "node {id} gossips with every other node");
        assert!(!peers.contains(&FleetHarness::<i64>::store_dir(&dir.0, id)));
    }
    assert!(fleet.leave(2).is_some());
    assert!(fleet.leave(2).is_none());
    assert_eq!(fleet.nodes(), &[1, 3]);
    for id in [1u64, 3] {
        let peers = &fleet.node(id).unwrap().service_config().gossip_peers;
        assert_eq!(
            peers,
            &vec![FleetHarness::<i64>::store_dir(
                &dir.0,
                if id == 1 { 3 } else { 1 }
            )]
        );
    }
    // The ring shrank with the fleet; placement stays within members.
    for tenant in 0..64u64 {
        assert!([1u64, 3].contains(&fleet.place(tenant).unwrap()));
    }
}

// ------------------------------------------------------ multi-process --

/// Env var carrying a child fleet member's store directory; unset means
/// "this is not a child" and [`fleet_child_main`] is a no-op.
const CHILD_DIR: &str = "PROSPERITY_FLEET_CHILD_DIR";
/// `:`-separated peer store directories for the child's gossip sweeps.
const CHILD_PEERS: &str = "PROSPERITY_FLEET_CHILD_PEERS";

/// Deterministic workload both sides of the process boundary derive
/// independently — nothing but snapshots crosses between processes.
const CHILD_SEED: u64 = 0x000F_1EE7_0002;

/// The body of one fleet member process. As a plain `#[test]` it is a
/// no-op pass; re-exec'd by [`fleet_multi_process_smoke`] with the env
/// vars set, it serves its tenant's stream (asserting bit-identity
/// against its own serial oracle), exports its hottest plans, and writes
/// `result.txt` (`tenant=.. adopted=..`) into its store directory.
#[test]
fn fleet_child_main() {
    let Ok(dir) = std::env::var(CHILD_DIR) else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let tenant: usize = dir
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(|n| n.strip_prefix("node-"))
        .and_then(|n| n.parse().ok())
        .expect("child dir follows the node-<id> layout");
    let peers: Vec<std::path::PathBuf> = std::env::var(CHILD_PEERS)
        .unwrap_or_default()
        .split(':')
        .filter(|s| !s.is_empty())
        .map(std::path::PathBuf::from)
        .collect();

    let (streams, weights) = fleet_streams(CHILD_SEED, 2, 6);
    let stream = &streams[tenant];
    let config = EngineConfig::new(TileShape::new(8, 8), 512);
    let oracle = serial_oracle(stream, &weights, config);

    let store = std::sync::Arc::new(SnapshotStore::new(&dir, 4).expect("open store"));
    let service = ServiceConfig::default().with_gossip(1, peers);
    let mut serving = ServingLoop::<i64>::new(config, BatchPolicy::RoundRobin, service)
        .with_snapshot_store(std::sync::Arc::clone(&store));
    let outs = run_collect(&mut serving, stream, &weights);
    assert_eq!(
        outs, oracle,
        "child {tenant}: bit-identity inside the process"
    );

    let snapshot = serving.shared_cache().export_hottest(512);
    assert!(!snapshot.is_empty());
    store.save(&snapshot).expect("export");
    let stats = serving.stats();
    std::fs::write(
        dir.join("result.txt"),
        format!("tenant={tenant} adopted={}\n", stats.gossip_plans_adopted),
    )
    .expect("write result");
}

/// Real fleet processes over a shared directory tree: a donor process
/// warms up and exports, then a joiner process gossips the donor's
/// snapshot in and proves it adopted plans it never computed. The store
/// layout is exactly [`FleetHarness::store_dir`]'s, so in-process and
/// multi-process fleets interoperate on disk.
#[test]
fn fleet_multi_process_smoke() {
    if std::env::var(CHILD_DIR).is_ok() {
        return; // never recurse inside a child
    }
    let dir = TempDir::new("procs");
    let donor_dir = FleetHarness::<i64>::store_dir(&dir.0, 0);
    let joiner_dir = FleetHarness::<i64>::store_dir(&dir.0, 1);
    std::fs::create_dir_all(&donor_dir).expect("mkdir");
    std::fs::create_dir_all(&joiner_dir).expect("mkdir");
    let exe = std::env::current_exe().expect("test binary path");
    let spawn = |node_dir: &std::path::Path, peers: &str| {
        std::process::Command::new(&exe)
            .args([
                "fleet_child_main",
                "--exact",
                "--test-threads",
                "1",
                "--quiet",
            ])
            .env(CHILD_DIR, node_dir)
            .env(CHILD_PEERS, peers)
            .status()
            .expect("spawn fleet child")
    };

    // Donor process: no peers, serves cold, exports its warm cache.
    let status = spawn(&donor_dir, "");
    assert!(status.success(), "donor process failed: {status}");
    let donor_store = SnapshotStore::new(&donor_dir, 4).expect("open donor store");
    assert!(
        donor_store.load_latest_valid().expect("walk").is_some(),
        "donor must have exported a loadable snapshot"
    );

    // Joiner process: gossips on the donor's directory, starts warm.
    let status = spawn(&joiner_dir, donor_dir.to_str().expect("utf8 path"));
    assert!(status.success(), "joiner process failed: {status}");
    let result = std::fs::read_to_string(joiner_dir.join("result.txt")).expect("joiner result");
    let adopted: u64 = result
        .split("adopted=")
        .nth(1)
        .and_then(|s| s.trim().parse().ok())
        .expect("result format");
    assert!(
        adopted > 0,
        "joiner must adopt plans across the process boundary: {result:?}"
    );
    // The donor's result shows no adoption — gossip was one-way here.
    let donor_result = std::fs::read_to_string(donor_dir.join("result.txt")).expect("donor result");
    assert!(donor_result.contains("adopted=0"), "{donor_result:?}");
}

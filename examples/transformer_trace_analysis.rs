//! Per-layer ProSparsity analysis of a spiking transformer (SpikeBERT):
//! which layers exhibit the most product sparsity, how Exact/Partial Match
//! split, and what a second prefix would add (the Table II question).
//!
//! Run with `cargo run --release --example transformer_trace_analysis`.

use prosperity::core::multi_prefix::analyze_matrix;
use prosperity::core::ProSparsityPlan;
use prosperity::models::{LayerKind, Workload};
use prosperity::spikemat::TileShape;

fn main() {
    let workload = Workload::fig8_suite()
        .into_iter()
        .find(|w| w.name() == "SpikeBERT/SST-2")
        .expect("suite contains SpikeBERT/SST-2");
    println!("workload: {} — generating trace...\n", workload.name());
    let trace = workload.generate_trace(0.25);
    let tile = TileShape::prosperity_default();

    println!(
        "{:<26} {:>6} {:>9} {:>9} {:>7} {:>7} {:>8}",
        "layer (block 0 + cls)", "kind", "bit", "product", "EM%", "PM%", "2nd pfx"
    );
    println!("{}", "-".repeat(80));
    for l in trace
        .layers
        .iter()
        .filter(|l| l.spec.name.contains("block0") || l.spec.name.contains("classifier"))
    {
        let plan = ProSparsityPlan::build_tiled(&l.spikes, tile);
        let s = plan.stats();
        let two = analyze_matrix(&l.spikes, tile);
        let kind = match l.spec.kind {
            LayerKind::Conv => "conv",
            LayerKind::Linear => "lin",
            LayerKind::Attention => "attn",
        };
        println!(
            "{:<26} {:>6} {:>8.2}% {:>8.2}% {:>6.1}% {:>6.1}% {:>7.2}%",
            l.spec.name.trim_start_matches("spikebert."),
            kind,
            100.0 * s.bit_density(),
            100.0 * s.pro_density(),
            100.0 * s.em_rows as f64 / s.rows.max(1) as f64,
            100.0 * s.pm_rows as f64 / s.rows.max(1) as f64,
            100.0 * two.two_prefix_ratio(),
        );
    }

    // Whole-model aggregate.
    let mut agg = prosperity::core::ProStats::default();
    for l in &trace.layers {
        agg += *ProSparsityPlan::build_tiled(&l.spikes, tile).stats();
    }
    println!("{}", "-".repeat(80));
    println!(
        "whole model: bit {:.2}% -> product {:.2}%  ({:.1}x computation reduction)",
        100.0 * agg.bit_density(),
        100.0 * agg.pro_density(),
        agg.reduction()
    );
    println!(
        "prefix ratio {:.1}% (EM {:.1}%, PM {:.1}%)",
        100.0 * agg.prefix_ratio(),
        100.0 * agg.em_rows as f64 / agg.rows.max(1) as f64,
        100.0 * agg.pm_rows as f64 / agg.rows.max(1) as f64
    );
    println!("\nThe attention GeMMs are the layers prior SNN ASICs cannot run;");
    println!("Prosperity processes them with the same PPU + SFU (paper Sec. IV).");
}

//! Simulate a full SNN workload on the Prosperity accelerator and every
//! baseline, printing a Table IV-style comparison.
//!
//! Run with `cargo run --release --example simulate_accelerator [scale]`
//! where `scale` (default 0.25) subsamples layer rows for speed.

use prosperity::baselines::a100::A100;
use prosperity::baselines::eyeriss::Eyeriss;
use prosperity::baselines::mint::Mint;
use prosperity::baselines::ptb::Ptb;
use prosperity::baselines::sato::Sato;
use prosperity::baselines::stellar::Stellar;
use prosperity::models::Workload;
use prosperity::sim::{simulate_model, AreaModel, EnergyModel, ProsperityConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let workload = Workload::vgg16_cifar100();
    println!("workload: {} (scale {scale})", workload.name());
    println!("generating calibrated activation trace...");
    let trace = workload.generate_trace(scale);
    println!(
        "  {} layers, {:.2} GOP dense, bit density {:.2}%\n",
        trace.layers.len(),
        trace.dense_ops() as f64 / 1e9,
        100.0 * trace.bit_density()
    );

    let config = ProsperityConfig::default();
    let perf = simulate_model(&trace, &config);
    let energy = EnergyModel::default().energy(&perf.events);
    let area = AreaModel::default().area(&config);

    println!(
        "Prosperity (m={} k={} n={}):",
        config.tile.m, config.tile.k, config.n_tile
    );
    println!("  cycles          : {}", perf.cycles);
    println!("  latency         : {:.3} ms", 1e3 * perf.time_seconds());
    println!("  throughput      : {:.1} GOP/s", perf.throughput_gops());
    println!(
        "  energy          : {:.3} mJ ({:.1}% DRAM)",
        1e3 * energy.total(),
        100.0 * energy.dram / energy.total()
    );
    println!("  area            : {:.3} mm2", area.total());
    println!(
        "  bit density     : {:.2}%",
        100.0 * perf.stats.bit_density()
    );
    println!(
        "  product density : {:.2}%\n",
        100.0 * perf.stats.pro_density()
    );

    println!(
        "{:<12} {:>12} {:>14} {:>10}",
        "baseline", "latency ms", "energy mJ", "speedup"
    );
    let mine = perf.time_seconds();
    let report = |name: &str, time_s: f64, energy_j: f64| {
        println!(
            "{:<12} {:>12.3} {:>14.3} {:>9.2}x",
            name,
            1e3 * time_s,
            1e3 * energy_j,
            time_s / mine
        );
    };
    let e = Eyeriss::default().simulate(&trace);
    report("Eyeriss", e.time_s, e.energy_j);
    let p = Ptb::default().simulate(&trace);
    report("PTB", p.time_s, p.energy_j);
    let s = Sato::default().simulate(&trace);
    report("SATO", s.time_s, s.energy_j);
    let m = Mint::default().simulate(&trace);
    report("MINT", m.time_s, m.energy_j);
    if let Some(st) = Stellar::default().simulate(&trace) {
        report("Stellar", st.time_s, st.energy_j);
    }
    let g = A100::default().simulate(&trace);
    report("A100", g.time_s, g.energy_j);
    println!("\n(speedup = baseline latency / Prosperity latency)");
}

//! Fleet mode: N serving **processes** warming each other through
//! snapshot gossip.
//!
//! Run with `cargo run --release --example fleet [nodes]` (default 3).
//!
//! The parent process builds a consistent-hash [`Ring`] over the member
//! ids, partitions the tenants, and re-execs itself once per node (the
//! `PROSPERITY_FLEET_NODE` env var selects child mode). Each node process
//! serves its tenants through a [`ServingLoop`] with gossip enabled
//! ([`ServiceConfig::with_gossip`]), exporting its hottest plans to
//! `root/node-<id>` and importing its peers' newest snapshots. Nothing but
//! snapshot files crosses the process boundaries.
//!
//! After the fleet has served, one **joiner** process starts with a cold
//! cache, gossip-bootstraps from every member's directory before its first
//! step, and serves a fresh tenant. The summary shows the plans it adopted
//! without computing them and the share of its lookups served by those
//! adopted plans (`restored_hits`).

use prosperity::core::engine::{
    BatchPolicy, EngineConfig, FleetHarness, Ring, ServiceConfig, ServingLoop, SnapshotStore,
    TraceStep,
};
use prosperity::models::tracegen::{TraceGen, TraceGenParams};
use prosperity::spikemat::gemm::WeightMatrix;
use prosperity::spikemat::{SpikeMatrix, TileShape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

const NODE_ENV: &str = "PROSPERITY_FLEET_NODE";
const ROOT_ENV: &str = "PROSPERITY_FLEET_ROOT";
const COUNT_ENV: &str = "PROSPERITY_FLEET_COUNT";

/// Every process derives the same workload from the same seed — the only
/// shared state on disk is the snapshot directories.
const SEED: u64 = 0xF1EE7;
const STEPS: usize = 8;
const TENANTS_PER_NODE: usize = 2;

fn streams_for(count: usize) -> (Vec<Vec<SpikeMatrix>>, WeightMatrix<i64>) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let tenants = count * TENANTS_PER_NODE + 1; // +1: the joiner's tenant
    let gen = TraceGen::new(TraceGenParams::uncorrelated(0.30));
    let streams = gen.generate_tenant_streams(tenants, STEPS, 64, 48, 0.999, 0.9995, &mut rng);
    let weights = WeightMatrix::from_fn(48, 4, |r, c| (r * 5 + c) as i64 - 11);
    (streams, weights)
}

fn engine_config() -> EngineConfig {
    EngineConfig::new(TileShape::new(8, 8), 1024)
}

/// One fleet member (or the joiner, `node == count`): serve, export,
/// report on stdout as `key=value` pairs the parent scrapes.
fn child_main(node: u64, root: PathBuf, count: usize) {
    let (streams, weights) = streams_for(count);
    let ring = Ring::with_nodes(&(0..count as u64).collect::<Vec<_>>());
    let all_tenants: Vec<u64> = (0..(count * TENANTS_PER_NODE) as u64).collect();
    let mine: Vec<u64> = if node == count as u64 {
        vec![all_tenants.len() as u64] // the joiner's fresh tenant
    } else {
        ring.partition(&all_tenants)
            .into_iter()
            .find(|(id, _)| *id == node)
            .map(|(_, bucket)| bucket)
            .unwrap_or_default()
    };

    let dir = FleetHarness::<i64>::store_dir(&root, node);
    let store = Arc::new(SnapshotStore::new(&dir, 4).expect("open store"));
    let peers: Vec<PathBuf> = (0..=count as u64)
        .filter(|&id| id != node)
        .map(|id| FleetHarness::<i64>::store_dir(&root, id))
        .collect();
    let service = ServiceConfig::default().with_gossip(1, peers);
    let mut serving = ServingLoop::<i64>::new(engine_config(), BatchPolicy::RoundRobin, service)
        .with_snapshot_store(Arc::clone(&store));

    let traces: Vec<Vec<TraceStep<'_, i64>>> = mine
        .iter()
        .map(|&t| streams[t as usize].iter().map(|s| (s, &weights)).collect())
        .collect();
    let mut served = 0usize;
    serving.run_batch_as(&mine, &traces, |_, _, _| served += 1);
    let snapshot = serving.shared_cache().export_hottest(1024);
    store.save(&snapshot).expect("export snapshot");

    let stats = serving.stats();
    let cache = serving.shared_cache().stats();
    println!(
        "node={node} tenants={} steps={served} adopted={} imports={} \
         hits={} misses={} restored_hits={}",
        mine.len(),
        stats.gossip_plans_adopted,
        stats.gossip_imports,
        cache.hits,
        cache.misses,
        cache.restored_hits,
    );
}

fn spawn_node(node: u64, root: &std::path::Path, count: usize) -> String {
    let out = std::process::Command::new(std::env::current_exe().expect("exe"))
        .env(NODE_ENV, node.to_string())
        .env(ROOT_ENV, root)
        .env(COUNT_ENV, count.to_string())
        .output()
        .expect("spawn fleet node");
    assert!(out.status.success(), "node {node} failed: {out:?}");
    String::from_utf8_lossy(&out.stdout).trim().to_string()
}

fn main() {
    if let Ok(node) = std::env::var(NODE_ENV) {
        let root = PathBuf::from(std::env::var(ROOT_ENV).expect("fleet root"));
        let count: usize = std::env::var(COUNT_ENV)
            .expect("fleet count")
            .parse()
            .unwrap();
        child_main(node.parse().expect("node id"), root, count);
        return;
    }

    let count: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let root = std::env::temp_dir().join(format!("prosperity_fleet_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    println!(
        "fleet: {count} member processes + 1 joiner, root {}",
        root.display()
    );
    println!("-- warm wave (each member gossips with the members before it) --");
    for node in 0..count as u64 {
        println!("  {}", spawn_node(node, &root, count));
    }
    println!("-- joiner (cold cache, bootstraps from every member) --");
    let report = spawn_node(count as u64, &root, count);
    println!("  {report}");

    let adopted: u64 = report
        .split("adopted=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    println!(
        "\njoiner adopted {adopted} plans it never computed — warmth crossed \
         the process boundary, results stayed bit-identical (see tests/fleet.rs)."
    );
    let _ = std::fs::remove_dir_all(&root);
}

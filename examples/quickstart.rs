//! Quickstart: product sparsity on the paper's running example (Fig. 1-3).
//!
//! Run with `cargo run --release --example quickstart`.

use prosperity::core::exec::prosparsity_gemm;
use prosperity::core::{MatchKind, ProSparsityPlan};
use prosperity::spikemat::gemm::{spiking_gemm, WeightMatrix};
use prosperity::spikemat::{SpikeMatrix, TileShape};

fn main() {
    // The 6×4 spike matrix of Fig. 1 (b).
    let spikes = SpikeMatrix::from_rows_of_bits(&[
        &[1, 0, 1, 0], // Row 0
        &[1, 0, 0, 1], // Row 1
        &[1, 0, 1, 1], // Row 2
        &[0, 0, 1, 0], // Row 3
        &[1, 1, 0, 1], // Row 4
        &[1, 1, 0, 1], // Row 5 (duplicate of Row 4)
    ]);
    println!("spike matrix:\n{spikes:?}\n");

    // Plan product sparsity: Detector -> Pruner -> Dispatcher.
    let plan = ProSparsityPlan::build(&spikes);
    let tile = &plan.tiles()[0];
    println!("ProSparsity forest (prefix per row):");
    for (i, meta) in tile.rows.iter().enumerate() {
        let kind = match meta.kind {
            MatchKind::None => "root       ",
            MatchKind::Partial => "PartialMatch",
            MatchKind::Exact => "ExactMatch ",
        };
        match meta.prefix {
            Some(p) => println!(
                "  row {i}: {kind} prefix=row {p}, pattern {:?}",
                meta.pattern
            ),
            None => println!("  row {i}: {kind} pattern {:?}", meta.pattern),
        }
    }
    println!(
        "execution order (stable sort by popcount): {:?}\n",
        tile.order
    );

    let s = plan.stats();
    println!("dense ops / column      : {}", s.dense_ops);
    println!(
        "bit-sparse ops / column : {} (density {:.2}%)",
        s.bit_ops,
        100.0 * s.bit_density()
    );
    println!(
        "ProSparsity ops / column: {} (density {:.2}%)",
        s.pro_ops,
        100.0 * s.pro_density()
    );
    println!("computation reduction   : {:.2}x\n", s.reduction());

    // Lossless execution: identical to the bit-sparse reference.
    let weights = WeightMatrix::from_vec(4, 3, vec![3, -1, 5, -1, 2, 7, 4, -3, 1, 6, 0, -2]);
    let pro = prosparsity_gemm(&spikes, &weights, TileShape::new(6, 4));
    let reference = spiking_gemm(&spikes, &weights);
    assert_eq!(pro, reference, "ProSparsity must be lossless");
    println!("ProSparsity GeMM output (== bit-sparse reference):");
    for i in 0..pro.rows() {
        println!("  row {i}: {:?}", pro.row(i));
    }
    println!(
        "\nRows 4 and 5 share one result; the paper's 24 dense ops became {} ops.",
        s.pro_ops
    );
}

//! End-to-end spiking-CNN inference through the ProSparsity software
//! pipeline: rate-encode an image, lower each convolution with im2col,
//! execute every spiking GeMM under product sparsity (verifying it against
//! the bit-sparse reference), and integrate output currents with the LIF
//! neuron array to produce the next layer's spikes.
//!
//! Run with `cargo run --release --example spiking_cnn_inference`.

use prosperity::core::exec::prosparsity_gemm;
use prosperity::core::ProSparsityPlan;
use prosperity::neuron::{LifParams, NeuronArray};
use prosperity::spikemat::gemm::{spiking_gemm, WeightMatrix};
use prosperity::spikemat::im2col::{im2col, Conv2dParams, SpikeFeatureMap};
use prosperity::spikemat::{SpikeMatrix, TileShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const T: usize = 4; // time steps

fn main() {
    let mut rng = StdRng::seed_from_u64(2025);

    // A synthetic 1×12×12 "image": bright blob on dark background.
    let (h, w) = (12usize, 12usize);
    let intensities: Vec<f32> = (0..h * w)
        .map(|i| {
            let (y, x) = (i / w, i % w);
            let d = ((y as f32 - 5.5).powi(2) + (x as f32 - 5.5).powi(2)).sqrt();
            (1.2 - 0.18 * d).clamp(0.0, 1.0)
        })
        .collect();

    // Rate-code into T time steps of binary spike frames.
    let frames: Vec<SpikeFeatureMap> = (0..T)
        .map(|_| {
            let mut f = SpikeFeatureMap::zeros(1, h, w);
            for y in 0..h {
                for x in 0..w {
                    if rng.gen_bool(f64::from(intensities[y * w + x]).min(1.0)) {
                        f.set(0, y, x, true);
                    }
                }
            }
            f
        })
        .collect();
    let input_spikes: usize = frames
        .iter()
        .map(|f| (0..h * w).filter(|&i| f.get(0, i / w, i % w)).count())
        .sum();
    println!("input: 1x{h}x{w} over {T} steps, {input_spikes} spikes\n");

    // Layer 1: 3×3 conv, 1 -> 8 channels.
    let conv = Conv2dParams::square(1, 8, h, 3, 1, 1);
    let wconv = WeightMatrix::from_fn(9, 8, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.06 - 0.12);
    let lowered: Vec<SpikeMatrix> = frames.iter().map(|f| im2col(f, &conv)).collect();
    let spikes_l1 = SpikeMatrix::vconcat(&lowered); // M = T·OH·OW
    run_layer("conv1 (1->8, 3x3)", &spikes_l1, &wconv);

    // Execute conv1 and fire through LIF to build layer-2 input.
    let currents = spiking_gemm(&spikes_l1, &wconv);
    let per_step = conv.out_h() * conv.out_w();
    let mut neurons = NeuronArray::new(8, LifParams::default());
    let mut l2_rows: Vec<Vec<u8>> = Vec::new();
    for t in 0..T {
        for p in 0..per_step {
            // One output pixel across channels at time t.
            let row: Vec<f32> = currents.row(t * per_step + p).to_vec();
            l2_rows.push(neurons.step(&row));
        }
        neurons.reset(); // independent pixels share the array per step here
    }
    let spikes_l2 =
        SpikeMatrix::from_rows_of_bits(&l2_rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
    println!(
        "LIF layer fired {} spikes ({:.1}% density) into layer 2\n",
        spikes_l2.total_spikes(),
        100.0 * spikes_l2.density()
    );

    // Layer 2: 1×1 conv as a plain spiking GeMM, 8 -> 16 channels.
    let wfc = WeightMatrix::from_fn(8, 16, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.04 - 0.2);
    run_layer("conv2 (8->16, 1x1)", &spikes_l2, &wfc);

    println!("every layer verified: ProSparsity output == bit-sparse reference");
}

fn run_layer(name: &str, spikes: &SpikeMatrix, weights: &WeightMatrix<f32>) {
    let tile = TileShape::new(256.min(spikes.rows().max(1)), 16.min(spikes.cols().max(1)));
    let plan = ProSparsityPlan::build_tiled(spikes, tile);
    let s = plan.stats();
    println!(
        "{name}: M={} K={} | bit {:.2}% -> product {:.2}% ({:.2}x fewer ops)",
        spikes.rows(),
        spikes.cols(),
        100.0 * s.bit_density(),
        100.0 * s.pro_density(),
        s.reduction()
    );
    // f32 accumulation order differs between schedules, so verify with an
    // integer image of the weights (exactness is an integer property).
    let wi = WeightMatrix::from_fn(weights.rows(), weights.cols(), |r, c| {
        (weights.get(r, c) * 1024.0).round() as i64
    });
    let pro = prosparsity_gemm(spikes, &wi, tile);
    let reference = spiking_gemm(spikes, &wi);
    assert_eq!(pro, reference, "{name} must be lossless");
}

//! Offline shim for `rand` 0.8.
//!
//! Implements the API subset this workspace uses — `Rng::{gen, gen_range,
//! gen_bool}`, `SeedableRng::seed_from_u64`, and `rngs::StdRng` — on top of a
//! xoshiro256++ core seeded through SplitMix64. The generator is fully
//! deterministic for a given seed, which is all the property tests and trace
//! generators require; it is **not** the same stream as the real `StdRng`
//! (ChaCha12), so absolute sampled values differ from a crates.io build, but
//! every test in this workspace asserts relations between implementations
//! rather than golden sampled values.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the "standard" distribution of `T`
    /// (`[0, 1)` for floats, full range for integers, fair coin for bool).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform-range sampler (integers and floats).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

// Widening-multiply bounded sampling (Lemire's method without the rejection
// step; the ~2^-64 modulo bias is irrelevant for test workloads).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                if inclusive && span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span + u64::from(inclusive);
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                if inclusive && span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span + u64::from(inclusive);
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ (not ChaCha12 like the
    /// real `StdRng`; see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn gen_bool_rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn float_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_ref() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..100)
        }
        let mut rng = StdRng::seed_from_u64(8);
        assert!(sample(&mut rng) < 100);
    }
}

//! Offline shim for `serde_derive`.
//!
//! This workspace derives `Serialize`/`Deserialize` on its public types but
//! never serializes them through serde (the on-disk trace format is the
//! hand-rolled codec in `prosperity-models::trace_io`). The build environment
//! has no crates.io access, so these derives expand to nothing: the
//! annotations compile, keep the real serde a drop-in replacement, and cost
//! zero code.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline shim for `crossbeam`.
//!
//! Provides the `crossbeam::thread::scope` subset the figure-reproduction
//! benches use, implemented on `std::thread::scope` (which landed in std
//! after crossbeam popularized the pattern). Scoped threads may borrow from
//! the enclosing stack; the scope joins them all before returning.

/// Scoped threads.
pub mod thread {
    /// Handle passed to the [`scope`] closure for spawning scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a unit placeholder
        /// where crossbeam passes a nested scope handle (enough for callers
        /// that ignore it, which is the pattern this workspace uses).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// Always returns `Ok` (a panicking child propagates the panic instead
    /// of surfacing it as an `Err`, which is stricter than crossbeam but
    /// indistinguishable for callers that `.expect()` the result).
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }
}

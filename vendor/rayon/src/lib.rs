//! Offline shim for `rayon`.
//!
//! Provides the parallel-iterator subset the Prosperity kernels use
//! (`into_par_iter`/`par_iter` + `map`/`for_each`/`collect`, and [`join`])
//! on top of `std::thread::scope`. Work is split into one contiguous,
//! order-preserving chunk per worker thread — the right shape for the
//! kernels' coarse tile-level parallelism, where items are few and
//! similarly sized; there is no work stealing.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like the real crate) or
//! `std::thread::available_parallelism()`. With one thread everything runs
//! inline on the caller with zero spawn overhead.

use std::ops::Range;

/// Number of worker threads parallel operations will use.
///
/// Honors `RAYON_NUM_THREADS` when set to a positive integer, otherwise
/// falls back to the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: joined task panicked"))
    })
}

/// Order-preserving parallel map over owned items: one contiguous chunk per
/// worker. The backbone of every iterator method in this shim.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let total = items.len();
    let chunk = total.div_ceil(threads);
    let mut source = items.into_iter();
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    while source.len() > 0 {
        chunks.push(source.by_ref().take(chunk).collect());
    }
    let f = &f;
    let results: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim: worker panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// An eager, order-preserving parallel iterator over a materialized item set.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: parallel_map_vec(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = parallel_map_vec(self.items, f);
    }

    /// Collects the (already computed, in-order) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type yielded by the parallel iterator.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// By-reference conversion (rayon's `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by the parallel iterator.
    type Item: Send;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.into_par_iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

/// The traits most code imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let counter = AtomicUsize::new(0);
        (0..257).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(v.len(), 4); // still usable
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn forced_thread_count_still_correct() {
        // Exercise the multi-chunk path even on a 1-CPU host.
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let out: Vec<usize> = (0..103).into_par_iter().map(|i| i + 1).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, (1..104).collect::<Vec<_>>());
    }
}

//! Offline shim for `bytes`.
//!
//! Backs the binary trace codec in `prosperity-models::trace_io`. Implements
//! [`Bytes`], [`BytesMut`] and the little-endian [`Buf`]/[`BufMut`] accessor
//! subset the codec uses, with plain `Vec<u8>` storage instead of the real
//! crate's refcounted buffers (trace blobs here are small and short-lived).

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Unread bytes remaining in the buffer.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a new buffer holding the given sub-range of the unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            pos: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.len() >= n,
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let start = self.pos;
        self.pos += n;
        &self.data[start..start + n]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Read-side accessors over a byte buffer (little-endian helpers).
pub trait Buf {
    /// Unread bytes remaining.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out of the buffer, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Splits off the next `n` bytes as an owned buffer.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let src = self.take(dst.len());
        dst.copy_from_slice(src);
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes {
            data: self.take(n).to_vec(),
            pos: 0,
        }
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, keeping the allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Write-side accessors over a growable byte buffer (little-endian helpers).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian_fields() {
        let mut w = BytesMut::new();
        w.put_slice(b"HDR");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 3 + 1 + 4 + 8);
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn copy_to_bytes_splits_prefix() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn slice_and_to_vec_expose_unread_window() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let _ = b.get_u8();
        assert_eq!(b.to_vec(), vec![8, 7, 6]);
        assert_eq!(&b.slice(1..3)[..], &[7, 6]);
    }

    #[test]
    fn clear_keeps_capacity_and_deref_mut_backpatches() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32_le(0);
        w.put_slice(b"payload");
        w[0..4].copy_from_slice(&7u32.to_le_bytes());
        assert_eq!(&w[4..], b"payload");
        let cap_ptr = w.data.as_ptr();
        w.clear();
        assert!(w.is_empty());
        w.put_u8(1);
        assert_eq!(w.data.as_ptr(), cap_ptr, "clear must keep the allocation");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}

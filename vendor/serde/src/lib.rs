//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and derive macros so
//! the workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! without crates.io access. Nothing in this workspace performs serde
//! serialization (the binary trace codec is hand-rolled), so the derives
//! expand to nothing and the traits carry no methods. Replacing this shim
//! with the real `serde` is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no data-format backends exist in
/// this offline build, so the trait carries no methods).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no data-format backends exist
/// in this offline build, so the trait carries no methods).
pub trait Deserialize<'de>: Sized {}
